//! Per-job and fleet-level reports.
//!
//! A [`JobReport`] separates the **deterministic** result of a job (its
//! matching, stage counters, quality — identical regardless of fleet
//! size, thread count or scheduling order) from run metrics (timings,
//! thread allotment, peak RSS). [`JobReport::fingerprint`] canonicalizes
//! exactly the deterministic part, which is what the determinism tests
//! and the serving acceptance check compare byte for byte.

use std::time::Duration;

use minoan_core::Timings;
use minoan_eval::MatchQuality;
use minoan_kb::Json;

/// Terminal state of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Resolved successfully.
    Ok,
    /// Failed (load error, bad config, or a panic caught by the
    /// scheduler); the rest of the fleet is unaffected.
    Failed(String),
    /// Cancelled by an operator or client request (or skipped because
    /// the fleet was cancelled before dispatch).
    Cancelled,
    /// The job's deadline (`timeout_ms`) expired; the supervisor
    /// cancelled its token and the job unwound at the next checkpoint.
    TimedOut,
    /// The job panicked twice across retry attempts and was quarantined
    /// so it cannot wedge the fleet; carries the last panic message.
    Poisoned(String),
    /// The RSS watchdog observed the job exceeding `k×` its admission
    /// estimate and killed it gracefully at the next checkpoint.
    KilledOverBudget,
}

impl JobStatus {
    /// Whether the job completed successfully.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobStatus::Ok)
    }

    /// Short status label (`ok` / `failed` / `cancelled` / `timed_out`
    /// / `poisoned` / `killed_over_budget`).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Failed(_) => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::TimedOut => "timed_out",
            JobStatus::Poisoned(_) => "poisoned",
            JobStatus::KilledOverBudget => "killed_over_budget",
        }
    }

    /// The error detail carried by failure-like states, if any.
    pub fn error(&self) -> Option<&str> {
        match self {
            JobStatus::Failed(e) | JobStatus::Poisoned(e) => Some(e),
            _ => None,
        }
    }
}

/// Peak resident set size of this process in bytes, where the platform
/// exposes it (Linux `/proc/self/status` `VmHWM`); `None` elsewhere.
/// This is the process high-water mark — monotone over a fleet run, so
/// per-job values record "RSS never exceeded this by the time the job
/// finished", not a per-job delta.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmHWM:")
}

/// Current resident set size of this process in bytes (Linux
/// `/proc/self/status` `VmRSS`); `None` elsewhere. Unlike
/// [`peak_rss_bytes`] this can go down, which is what the scheduler's
/// RSS watchdog needs to measure live growth against a baseline.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmRSS:")
}

fn proc_status_bytes(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// The result of one job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job name (manifest key).
    pub name: String,
    /// Terminal status.
    pub status: JobStatus,
    /// The matching as URI pairs, in pipeline insertion order.
    pub matches: Vec<(String, String)>,
    /// Matches contributed by H1.
    pub h1_matches: usize,
    /// Matches contributed by H2.
    pub h2_matches: usize,
    /// Matches contributed by H3.
    pub h3_matches: usize,
    /// Pairs discarded by H4.
    pub h4_removed: usize,
    /// Quality against ground truth, when the job has one.
    pub quality: Option<MatchQuality>,
    /// Pipeline stage timings (run metric, not part of the fingerprint).
    pub timings: Option<Timings>,
    /// Wall-clock time of the whole job including input loading.
    pub wall: Duration,
    /// Worker threads the scheduler allotted this job.
    pub threads: usize,
    /// The admission estimate the job was charged against the budget.
    pub estimated_bytes: u64,
    /// Process peak RSS observed when the job finished.
    pub peak_rss_bytes: Option<u64>,
    /// How much the process RSS high-water mark **grew** while this job
    /// ran: `VmHWM` after minus `VmHWM` before, saturating at zero.
    /// Because the high-water mark is process-wide and monotone, this is
    /// an attribution, not an isolated measurement — a job that runs
    /// concurrently with a bigger one, or after a bigger one already
    /// raised the mark, records zero. It is the measured counterpart of
    /// [`JobReport::estimated_bytes`], the first input for tightening
    /// admission estimates from observations.
    pub peak_rss_delta_bytes: Option<u64>,
}

impl JobReport {
    /// A report for a job that never produced output.
    pub fn empty(name: &str, status: JobStatus) -> JobReport {
        JobReport {
            name: name.to_string(),
            status,
            matches: Vec::new(),
            h1_matches: 0,
            h2_matches: 0,
            h3_matches: 0,
            h4_removed: 0,
            quality: None,
            timings: None,
            wall: Duration::ZERO,
            threads: 0,
            estimated_bytes: 0,
            peak_rss_bytes: None,
            peak_rss_delta_bytes: None,
        }
    }

    /// `measured RSS delta / admission estimate`, when both are known
    /// and non-zero — the over/under-estimation factor of the static
    /// footprint heuristics for this job. `None` when either side is
    /// missing or zero (a zero delta carries no signal: another job
    /// already held the process high-water mark).
    pub fn rss_estimate_ratio(&self) -> Option<f64> {
        let delta = self.peak_rss_delta_bytes.filter(|&d| d > 0)?;
        (self.estimated_bytes > 0).then(|| delta as f64 / self.estimated_bytes as f64)
    }

    /// Canonical serialization of the job's **deterministic** result:
    /// name, status, stage counters, quality counts and every match
    /// pair — and nothing that varies run to run (timings, threads,
    /// RSS). Two runs of the same job spec must produce byte-identical
    /// fingerprints regardless of fleet size, thread count or where in
    /// the manifest the job sat.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let status = match &self.status {
            JobStatus::Ok => "ok".to_string(),
            JobStatus::Failed(e) => format!("failed:{e}"),
            JobStatus::Cancelled => "cancelled".to_string(),
            JobStatus::TimedOut => "timed_out".to_string(),
            JobStatus::Poisoned(e) => format!("poisoned:{e}"),
            JobStatus::KilledOverBudget => "killed_over_budget".to_string(),
        };
        let _ = write!(
            out,
            "{}\u{1}{status}\u{1}h1={} h2={} h3={} h4-={}",
            self.name, self.h1_matches, self.h2_matches, self.h3_matches, self.h4_removed
        );
        if let Some(q) = &self.quality {
            let _ = write!(
                out,
                "\u{1}tp={} pred={} actual={}",
                q.true_positives, q.predicted, q.actual
            );
        }
        for (a, b) in &self.matches {
            let _ = write!(out, "\u{2}{a}\u{3}{b}");
        }
        out
    }

    /// The report as JSON. `include_pairs` controls whether every match
    /// pair is listed (reports for large fleets may want counts and the
    /// fingerprint digest only).
    pub fn to_json(&self, include_pairs: bool) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("name".into(), Json::str(&self.name)),
            ("status".into(), Json::str(self.status.label())),
        ];
        if let Some(e) = self.status.error() {
            fields.push(("error".into(), Json::str(e)));
        }
        fields.push(("matches".into(), Json::num(self.matches.len() as f64)));
        fields.push((
            "fingerprint_fnv1a".into(),
            Json::str(format!("{:016x}", fnv1a(self.fingerprint().as_bytes()))),
        ));
        fields.push(("h1_matches".into(), Json::num(self.h1_matches as f64)));
        fields.push(("h2_matches".into(), Json::num(self.h2_matches as f64)));
        fields.push(("h3_matches".into(), Json::num(self.h3_matches as f64)));
        fields.push(("h4_removed".into(), Json::num(self.h4_removed as f64)));
        if let Some(q) = &self.quality {
            fields.push((
                "quality".into(),
                Json::obj([
                    ("precision", Json::Num(q.precision())),
                    ("recall", Json::Num(q.recall())),
                    ("f1", Json::Num(q.f1())),
                ]),
            ));
        }
        if let Some(t) = &self.timings {
            fields.push((
                "timings_ms".into(),
                Json::obj([
                    ("tokenize", Json::Num(t.tokenize.as_secs_f64() * 1e3)),
                    ("names_h1", Json::Num(t.names_h1.as_secs_f64() * 1e3)),
                    ("blocking", Json::Num(t.blocking.as_secs_f64() * 1e3)),
                    (
                        "similarities",
                        Json::Num(t.similarities.as_secs_f64() * 1e3),
                    ),
                    ("matching", Json::Num(t.matching.as_secs_f64() * 1e3)),
                    ("total", Json::Num(t.total().as_secs_f64() * 1e3)),
                ]),
            ));
        }
        fields.push(("wall_ms".into(), Json::Num(self.wall.as_secs_f64() * 1e3)));
        fields.push(("threads".into(), Json::num(self.threads as f64)));
        fields.push((
            "estimated_bytes".into(),
            Json::num(self.estimated_bytes as f64),
        ));
        fields.push((
            "peak_rss_bytes".into(),
            match self.peak_rss_bytes {
                Some(b) => Json::num(b as f64),
                None => Json::Null,
            },
        ));
        fields.push((
            "peak_rss_delta_bytes".into(),
            match self.peak_rss_delta_bytes {
                Some(b) => Json::num(b as f64),
                None => Json::Null,
            },
        ));
        if let Some(ratio) = self.rss_estimate_ratio() {
            fields.push(("rss_estimate_ratio".into(), Json::Num(ratio)));
        }
        if include_pairs {
            fields.push((
                "pairs".into(),
                Json::arr(
                    self.matches
                        .iter()
                        .map(|(a, b)| Json::arr([Json::str(a), Json::str(b)])),
                ),
            ));
        }
        Json::Obj(fields)
    }
}

/// The result of a fleet run: one report per job, in manifest order.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-job reports, in manifest order (not completion order).
    pub jobs: Vec<JobReport>,
    /// Fleet slots the scheduler ran with.
    pub slots: usize,
    /// Total worker-thread budget.
    pub threads: usize,
    /// Admission budget in bytes (`0` = unlimited).
    pub memory_budget_bytes: u64,
    /// Highest number of jobs observed running at once.
    pub peak_concurrent_jobs: usize,
    /// Wall-clock time of the whole fleet.
    pub wall: Duration,
    /// Process peak RSS after the fleet finished.
    pub peak_rss_bytes: Option<u64>,
}

impl ServeReport {
    /// Number of successfully resolved jobs.
    pub fn ok_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.status.is_ok()).count()
    }

    /// Number of failed jobs.
    pub fn failed_count(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.status, JobStatus::Failed(_)))
            .count()
    }

    /// The fleet report as JSON.
    pub fn to_json(&self, include_pairs: bool) -> Json {
        Json::obj([
            ("slots", Json::num(self.slots as f64)),
            ("threads", Json::num(self.threads as f64)),
            (
                "memory_budget_bytes",
                Json::num(self.memory_budget_bytes as f64),
            ),
            (
                "peak_concurrent_jobs",
                Json::num(self.peak_concurrent_jobs as f64),
            ),
            ("ok", Json::num(self.ok_count() as f64)),
            ("failed", Json::num(self.failed_count() as f64)),
            ("wall_ms", Json::Num(self.wall.as_secs_f64() * 1e3)),
            (
                "peak_rss_bytes",
                match self.peak_rss_bytes {
                    Some(b) => Json::num(b as f64),
                    None => Json::Null,
                },
            ),
            (
                "jobs",
                Json::arr(self.jobs.iter().map(|j| j.to_json(include_pairs))),
            ),
        ])
    }
}

/// 64-bit FNV-1a, the digest behind `fingerprint_fnv1a`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_ignores_run_metrics() {
        let mut a = JobReport::empty("j", JobStatus::Ok);
        a.matches = vec![("x:1".into(), "y:1".into())];
        a.h1_matches = 1;
        let mut b = a.clone();
        b.threads = 16;
        b.wall = Duration::from_secs(5);
        b.peak_rss_bytes = Some(123);
        b.peak_rss_delta_bytes = Some(45);
        b.timings = Some(Timings::default());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn rss_estimate_ratio_needs_both_sides() {
        let mut r = JobReport::empty("j", JobStatus::Ok);
        assert_eq!(r.rss_estimate_ratio(), None, "nothing measured");
        r.estimated_bytes = 1000;
        assert_eq!(r.rss_estimate_ratio(), None, "no delta");
        r.peak_rss_delta_bytes = Some(0);
        assert_eq!(r.rss_estimate_ratio(), None, "zero delta has no signal");
        r.peak_rss_delta_bytes = Some(1500);
        assert_eq!(r.rss_estimate_ratio(), Some(1.5));
        r.estimated_bytes = 0;
        assert_eq!(r.rss_estimate_ratio(), None, "no estimate to compare");
    }

    #[test]
    fn fingerprint_sees_result_changes() {
        let mut a = JobReport::empty("j", JobStatus::Ok);
        a.matches = vec![("x:1".into(), "y:1".into())];
        let mut b = a.clone();
        b.matches = vec![("x:1".into(), "y:2".into())];
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = JobReport::empty("j", JobStatus::Failed("boom".into()));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = JobReport::empty("j", JobStatus::Failed("nope".into()));
        r.estimated_bytes = 42;
        let j = r.to_json(true);
        assert_eq!(j.get("status").unwrap().as_str(), Some("failed"));
        assert_eq!(j.get("error").unwrap().as_str(), Some("nope"));
        assert_eq!(j.get("matches").unwrap().as_usize(), Some(0));
        assert!(j.get("pairs").is_some());
        assert!(j.get("fingerprint_fnv1a").is_some());
        let no_pairs = r.to_json(false);
        assert!(no_pairs.get("pairs").is_none());
    }

    #[test]
    fn lifecycle_states_have_distinct_labels_and_fingerprints() {
        let states = [
            JobStatus::Ok,
            JobStatus::Failed("e".into()),
            JobStatus::Cancelled,
            JobStatus::TimedOut,
            JobStatus::Poisoned("p".into()),
            JobStatus::KilledOverBudget,
        ];
        for (i, a) in states.iter().enumerate() {
            for b in states.iter().skip(i + 1) {
                assert_ne!(a.label(), b.label());
                assert_ne!(
                    JobReport::empty("j", a.clone()).fingerprint(),
                    JobReport::empty("j", b.clone()).fingerprint()
                );
            }
        }
        let poisoned = JobReport::empty("j", JobStatus::Poisoned("kaboom".into()));
        let j = poisoned.to_json(false);
        assert_eq!(j.get("status").unwrap().as_str(), Some("poisoned"));
        assert_eq!(j.get("error").unwrap().as_str(), Some("kaboom"));
        assert!(JobReport::empty("j", JobStatus::TimedOut)
            .to_json(false)
            .get("error")
            .is_none());
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(b) = peak_rss_bytes() {
            assert!(b > 1 << 20, "a test process uses more than 1 MiB, got {b}");
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
