//! Movie deduplication across catalogs — the YAGO–IMDb scenario: near-
//! zero value overlap, distinctive names, strong relational structure
//! (casts and directors).
//!
//! Shows the per-heuristic anatomy of the matching process and the
//! effect of the reciprocity filter H4.
//!
//! Run with `cargo run --release --example movies`.

use minoaner::core::{MinoanConfig, MinoanEr};
use minoaner::datagen::DatasetKind;
use minoaner::eval::MatchQuality;

fn main() {
    let d = DatasetKind::YagoImdb.generate_scaled(42, 0.2);
    println!(
        "{}: |E1|={} |E2|={} ground truth {}",
        d.name,
        d.pair.first.entity_count(),
        d.pair.second.entity_count(),
        d.truth.len()
    );

    // Default configuration (K=15, N=3, k=2, theta=0.6).
    let out = MinoanEr::with_defaults().run(&d.pair);
    let q = MatchQuality::evaluate(&out.matching, &d.truth);
    println!(
        "MinoanER defaults:     P {:5.1}%  R {:5.1}%  F1 {:5.1}%",
        q.precision() * 100.0,
        q.recall() * 100.0,
        q.f1() * 100.0
    );
    println!(
        "  heuristics: H1(names)={} H2(values)={} H3(rank aggregation)={} H4 removed {}",
        out.report.h1_matches, out.report.h2_matches, out.report.h3_matches, out.report.h4_removed
    );
    println!(
        "  blocks: |BN|={} (||BN||={}), |BT|={} (||BT||={})",
        out.report.name_blocks,
        out.report.name_comparisons,
        out.report.token_blocks,
        out.report.token_comparisons
    );

    // Value evidence alone (theta ~ 1) collapses on this dataset: the
    // matches share almost no tokens. Neighbor evidence is what works.
    let value_heavy = MinoanEr::new(MinoanConfig {
        theta: 0.99,
        ..Default::default()
    })
    .expect("valid config")
    .run(&d.pair);
    let qv = MatchQuality::evaluate(&value_heavy.matching, &d.truth);
    let neighbor_heavy = MinoanEr::new(MinoanConfig {
        theta: 0.01,
        ..Default::default()
    })
    .expect("valid config")
    .run(&d.pair);
    let qn = MatchQuality::evaluate(&neighbor_heavy.matching, &d.truth);
    println!("theta=0.99 (values):   F1 {:5.1}%", qv.f1() * 100.0);
    println!("theta=0.01 (neighbors): F1 {:5.1}%", qn.f1() * 100.0);
}
