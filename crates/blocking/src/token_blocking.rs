//! Token Blocking — the schema-agnostic blocking method behind `BT`.
//!
//! Every distinct token appearing in the values of *both* KBs defines one
//! block containing every entity (of either side) whose values contain
//! that token. No schema knowledge is used, which is exactly why the
//! method achieves the >99% recall the paper reports on highly
//! heterogeneous KBs.

use minoan_kb::{KbSide, TokenId};
use minoan_text::TokenizedPair;

use crate::block::{Block, BlockCollection, BlockKind};

/// Builds the token block collection `BT` from a tokenized pair.
///
/// Blocks whose key occurs on only one side are dropped: they can never
/// produce a comparison.
pub fn token_blocking(tokens: &TokenizedPair) -> BlockCollection {
    let dict = tokens.dict();
    let n_tokens = dict.len();
    // Invert entity -> tokens into token -> entities, per side.
    let mut firsts: Vec<Vec<minoan_kb::EntityId>> = vec![Vec::new(); n_tokens];
    let mut seconds: Vec<Vec<minoan_kb::EntityId>> = vec![Vec::new(); n_tokens];
    let n1 = tokens.entity_count(KbSide::First);
    let n2 = tokens.entity_count(KbSide::Second);
    for e in (0..n1 as u32).map(minoan_kb::EntityId) {
        for &t in tokens.tokens(KbSide::First, e) {
            firsts[t.index()].push(e);
        }
    }
    for e in (0..n2 as u32).map(minoan_kb::EntityId) {
        for &t in tokens.tokens(KbSide::Second, e) {
            seconds[t.index()].push(e);
        }
    }
    let mut blocks = Vec::new();
    for t in (0..n_tokens as u32).map(TokenId) {
        let f = &firsts[t.index()];
        let s = &seconds[t.index()];
        if !f.is_empty() && !s.is_empty() {
            blocks.push(Block {
                key: t.0,
                firsts: f.clone(),
                seconds: s.clone(),
            });
        }
    }
    BlockCollection::new(BlockKind::Token, blocks, n1, n2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_kb::{EntityId, KbBuilder, KbPair};
    use minoan_text::Tokenizer;

    fn build() -> (TokenizedPair, BlockCollection) {
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:1", "name", "kri kri taverna");
        a.add_literal("a:2", "name", "labyrinth grill");
        a.add_literal("a:3", "name", "palace");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:1", "title", "taverna kri");
        b.add_literal("b:2", "title", "knossos palace hotel");
        let pair = KbPair::new(a.finish(), b.finish());
        let toks = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&toks);
        (toks, bt)
    }

    #[test]
    fn only_shared_tokens_create_blocks() {
        let (toks, bt) = build();
        // Shared tokens: kri, taverna, palace.
        assert_eq!(bt.len(), 3);
        let keys: Vec<&str> = bt
            .blocks()
            .iter()
            .map(|b| toks.dict().token(TokenId(b.key)))
            .collect();
        assert!(keys.contains(&"kri"));
        assert!(keys.contains(&"taverna"));
        assert!(keys.contains(&"palace"));
        assert!(!keys.contains(&"labyrinth"));
    }

    #[test]
    fn block_membership_is_correct() {
        let (toks, bt) = build();
        let kri = toks.dict().token_id("kri").unwrap();
        let block = bt.blocks().iter().find(|b| b.key == kri.0).unwrap();
        assert_eq!(block.firsts, vec![EntityId(0)]);
        assert_eq!(block.seconds, vec![EntityId(0)]);
    }

    #[test]
    fn candidate_sets_follow_blocks() {
        let (_, bt) = build();
        // a:1 shares kri+taverna with b:1 only.
        let cands = bt.co_occurring(KbSide::First, EntityId(0));
        assert_eq!(cands, vec![EntityId(0)]);
        // a:2 shares nothing.
        assert!(bt.co_occurring(KbSide::First, EntityId(1)).is_empty());
        // a:3 shares palace with b:2.
        assert_eq!(bt.co_occurring(KbSide::First, EntityId(2)), vec![EntityId(1)]);
    }

    #[test]
    fn matching_pair_always_shares_a_block_if_it_shares_a_token() {
        let (_, bt) = build();
        assert!(bt.pair_co_occurs(EntityId(0), EntityId(0)));
        assert!(!bt.pair_co_occurs(EntityId(1), EntityId(0)));
    }
}
