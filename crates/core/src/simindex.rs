//! The similarity index: every similarity MinoanER needs, computed once
//! from the purged token blocks.
//!
//! The paper's efficiency argument (§III) is that both `valueSim` and
//! `neighborNSim` are functions of block statistics, so the matching
//! process iterates over blocks instead of the KBs — and that this pass
//! is *massively parallel*. This module realizes both claims:
//!
//! - `valueSim` accumulation is **sharded by `e1 % shards`**: every shard
//!   scans the blocks in order and accumulates only the pairs it owns, so
//!   each pair's floating-point sum has exactly the sequential
//!   block-order accumulation order — parallel results are bit-identical
//!   to sequential for any shard count;
//! - candidate lists are stored as **CSR** ([`Csr<Candidate>`]): one flat
//!   buffer plus offsets instead of one allocation per entity, filled and
//!   sorted in parallel (ties broken by entity id for determinism);
//! - the `neighborNSim` pass is embarrassingly parallel over `e1` and
//!   reuses the same machinery;
//! - the reverse-direction lists are a parallel CSR **transpose**
//!   (partial histograms → per-part cursors → disjoint fills).

use minoan_blocking::BlockCollection;
use minoan_exec::{Executor, SharedSlice};
use minoan_kb::{Csr, EntityId, FxHashMap, KbSide, TokenId};
use minoan_sim::token_weight;
use minoan_text::TokenizedPair;

/// A scored candidate (the other side's entity plus a similarity).
pub type Candidate = (EntityId, f64);

/// Candidate ordering: similarity descending, ties by entity id
/// ascending — a total order, so sorting is deterministic.
#[inline]
pub(crate) fn cand_cmp(a: &Candidate, b: &Candidate) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.0.cmp(&b.0))
}

/// Value and neighbor similarities for all co-occurring pairs, with
/// per-entity candidate lists sorted by similarity (descending, ties by
/// entity id for determinism), stored in CSR form.
#[derive(Debug, Default)]
pub struct SimilarityIndex {
    /// Per side: CSR of candidates by value similarity.
    value_cands: [Csr<Candidate>; 2],
    /// Per side: CSR of candidates with non-zero neighbor similarity.
    neighbor_cands: [Csr<Candidate>; 2],
}

impl SimilarityIndex {
    /// Builds the index sequentially from the (purged) token blocks.
    ///
    /// `top_neighbors` holds `topNneighbors(e)` per entity for each side
    /// (see [`crate::importance::top_neighbors`]).
    pub fn build(
        blocks: &BlockCollection,
        tokens: &TokenizedPair,
        top_neighbors: [&[Vec<EntityId>]; 2],
    ) -> Self {
        Self::build_with(blocks, tokens, top_neighbors, &Executor::sequential())
    }

    /// Builds the index on `exec`. Bit-identical to [`SimilarityIndex::build`]
    /// for any backend and thread count (see the module docs).
    pub fn build_with(
        blocks: &BlockCollection,
        tokens: &TokenizedPair,
        top_neighbors: [&[Vec<EntityId>]; 2],
        exec: &Executor,
    ) -> Self {
        let n1 = tokens.entity_count(KbSide::First);
        let n2 = tokens.entity_count(KbSide::Second);

        // Per-block token weights, data-parallel over block ranges.
        let block_list = blocks.blocks();
        let weights: Vec<f64> = exec.map_range(block_list.len(), |i| {
            let t = TokenId(block_list[i].key);
            token_weight(
                tokens.dict().ef(KbSide::First, t),
                tokens.dict().ef(KbSide::Second, t),
            )
        });

        // Sharded valueSim accumulation: shard `s` owns every pair whose
        // first entity satisfies `e1 % shards == s`. Each shard scans the
        // blocks in order, so per-pair sums accumulate in block order —
        // the exact sequential order — regardless of the shard count.
        //
        // Each *large* block's `firsts` list is **pre-grouped by owner
        // shard** once (a stable counting-sort per block, itself
        // data-parallel over blocks), so a shard reads only its own
        // sub-slice instead of rescanning the full list — O(assignments)
        // total reads instead of O(shards × assignments). Blocks with
        // fewer entities than shards keep the cheap filter scan: for
        // them the rescan costs less than the counting-sort's
        // O(shards) offset array, and skipping the grouping bounds the
        // extra memory by the assignment count. Both paths yield a
        // shard's entities in block order (the scatter is stable), so
        // per-pair sums keep the sequential accumulation order bit for
        // bit either way.
        let shards = exec.threads();
        let grouped: Vec<Option<(Vec<EntityId>, Vec<u32>)>> = if shards > 1 {
            exec.map_range(block_list.len(), |i| {
                let firsts = &block_list[i].firsts;
                if firsts.len() < shards {
                    return None;
                }
                let mut offsets = vec![0u32; shards + 1];
                for &e1 in firsts {
                    offsets[e1.index() % shards + 1] += 1;
                }
                for s in 0..shards {
                    offsets[s + 1] += offsets[s];
                }
                let mut items = vec![EntityId(0); firsts.len()];
                let mut cursor = offsets[..shards].to_vec();
                for &e1 in firsts {
                    let s = e1.index() % shards;
                    items[cursor[s] as usize] = e1;
                    cursor[s] += 1;
                }
                Some((items, offsets))
            })
        } else {
            Vec::new()
        };
        let mut shard_rows: Vec<Vec<Vec<Candidate>>> = exec.map_shards(shards, |s| {
            let mut acc: FxHashMap<(u32, u32), f64> = FxHashMap::default();
            for (i, (b, &w)) in block_list.iter().zip(&weights).enumerate() {
                let pregrouped = if shards > 1 {
                    grouped[i].as_ref()
                } else {
                    None
                };
                if let Some((items, offsets)) = pregrouped {
                    for &e1 in &items[offsets[s] as usize..offsets[s + 1] as usize] {
                        for &e2 in &b.seconds {
                            *acc.entry((e1.0, e2.0)).or_insert(0.0) += w;
                        }
                    }
                } else {
                    // Filter scan; a no-op filter when shards == 1.
                    for &e1 in &b.firsts {
                        if e1.index() % shards != s {
                            continue;
                        }
                        for &e2 in &b.seconds {
                            *acc.entry((e1.0, e2.0)).or_insert(0.0) += w;
                        }
                    }
                }
            }
            // Shard-local candidate rows: entity e1 lives at e1 / shards.
            let local_n = if n1 > s { (n1 - 1 - s) / shards + 1 } else { 0 };
            let mut rows: Vec<Vec<Candidate>> = vec![Vec::new(); local_n];
            for (&(e1, e2), &v) in &acc {
                rows[e1 as usize / shards].push((EntityId(e2), v));
            }
            for row in &mut rows {
                row.sort_unstable_by(cand_cmp);
            }
            rows
        });
        drop(grouped);

        // Interleave the shard rows back into entity order.
        let mut firsts_rows: Vec<Vec<Candidate>> = Vec::with_capacity(n1);
        for e1 in 0..n1 {
            firsts_rows.push(std::mem::take(&mut shard_rows[e1 % shards][e1 / shards]));
        }
        let value_firsts = Csr::from_rows(firsts_rows);
        Self::derive_from_value_firsts(value_firsts, n2, top_neighbors, exec)
    }

    /// Completes an index from a finished `value_firsts` CSR: transposes
    /// the reverse value direction and runs the `neighborNSim` pass in
    /// both directions. Shared by [`SimilarityIndex::build_with`] and
    /// the delta engine, which recomputes only the *affected* value rows
    /// and re-derives everything downstream — the derivation is linear
    /// in the pair count and a pure function of its inputs, so both
    /// paths produce bit-identical indexes.
    pub fn derive_from_value_firsts(
        value_firsts: Csr<Candidate>,
        n_second: usize,
        top_neighbors: [&[Vec<EntityId>]; 2],
        exec: &Executor,
    ) -> Self {
        let n1 = value_firsts.rows();
        let n2 = n_second;
        let value_seconds = transpose(&value_firsts, n2, exec);

        // neighborNSim(e1, e2) = Σ_{n1 ∈ top(e1), n2 ∈ top(e2)} valueSim(n1, n2).
        // For each e1: acc[n2] = Σ_{n1 ∈ top(e1)} valueSim(n1, n2), then
        // sum acc over e2's top neighbors for each candidate e2. Pure
        // reads over the value CSR — embarrassingly parallel over e1.
        let neighbor_parts: Vec<Vec<Vec<Candidate>>> = exec.map_parts(n1, |range| {
            let mut rows: Vec<Vec<Candidate>> = Vec::with_capacity(range.len());
            let mut acc: FxHashMap<u32, f64> = FxHashMap::default();
            for e1 in range {
                let cands = value_firsts.row(e1);
                let tops1 = &top_neighbors[0][e1];
                let mut row: Vec<Candidate> = Vec::new();
                if !cands.is_empty() && !tops1.is_empty() {
                    acc.clear();
                    for &nb1 in tops1 {
                        for &(nb2, v) in value_firsts.row(nb1.index()) {
                            *acc.entry(nb2.0).or_insert(0.0) += v;
                        }
                    }
                    if !acc.is_empty() {
                        for &(e2, _) in cands {
                            let mut s = 0.0;
                            for &nb2 in &top_neighbors[1][e2.index()] {
                                if let Some(&v) = acc.get(&nb2.0) {
                                    s += v;
                                }
                            }
                            if s > 0.0 {
                                row.push((e2, s));
                            }
                        }
                    }
                }
                row.sort_unstable_by(cand_cmp);
                rows.push(row);
            }
            rows
        });
        let neighbor_firsts = Csr::from_rows(neighbor_parts.concat());
        let neighbor_seconds = transpose(&neighbor_firsts, n2, exec);

        Self {
            value_cands: [value_firsts, value_seconds],
            neighbor_cands: [neighbor_firsts, neighbor_seconds],
        }
    }

    /// `valueSim(e1, e2)` over the purged blocks (0 when the pair never
    /// co-occurs).
    pub fn value_sim(&self, e1: EntityId, e2: EntityId) -> f64 {
        lookup(&self.value_cands[0], e1, e2)
    }

    /// `neighborNSim(e1, e2)` (0 when no top-neighbor pair co-occurs).
    pub fn neighbor_sim(&self, e1: EntityId, e2: EntityId) -> f64 {
        lookup(&self.neighbor_cands[0], e1, e2)
    }

    /// Candidates of `e` (an entity of `side`) sorted by value
    /// similarity, descending.
    pub fn value_candidates(&self, side: KbSide, e: EntityId) -> &[Candidate] {
        self.value_cands[side.index()].row(e.index())
    }

    /// Candidates of `e` with non-zero neighbor similarity, descending.
    pub fn neighbor_candidates(&self, side: KbSide, e: EntityId) -> &[Candidate] {
        self.neighbor_cands[side.index()].row(e.index())
    }

    /// The best value candidate of `e`, if any.
    pub fn top_value_candidate(&self, side: KbSide, e: EntityId) -> Option<Candidate> {
        self.value_cands[side.index()]
            .row(e.index())
            .first()
            .copied()
    }

    /// Number of co-occurring pairs with recorded value similarity.
    pub fn pair_count(&self) -> usize {
        self.value_cands[0].item_count()
    }

    /// The raw value-candidate CSR of one side (persisted by the
    /// artifact layer).
    pub fn value_csr(&self, side: KbSide) -> &Csr<Candidate> {
        &self.value_cands[side.index()]
    }

    /// The raw neighbor-candidate CSR of one side.
    pub fn neighbor_csr(&self, side: KbSide) -> &Csr<Candidate> {
        &self.neighbor_cands[side.index()]
    }

    /// Rebuilds an index from persisted CSR shards. The two directions
    /// of each similarity must agree on their total pair count (they are
    /// transposes of each other).
    pub fn from_parts(
        value_cands: [Csr<Candidate>; 2],
        neighbor_cands: [Csr<Candidate>; 2],
    ) -> Result<Self, String> {
        if value_cands[0].item_count() != value_cands[1].item_count() {
            return Err("value candidate directions disagree on pair count".into());
        }
        if neighbor_cands[0].item_count() != neighbor_cands[1].item_count() {
            return Err("neighbor candidate directions disagree on pair count".into());
        }
        Ok(Self {
            value_cands,
            neighbor_cands,
        })
    }

    /// Number of pairs with non-zero neighbor similarity.
    pub fn neighbor_pair_count(&self) -> usize {
        self.neighbor_cands[0].item_count()
    }
}

/// Finds `other` in the candidate row of `e`, returning its similarity.
fn lookup(csr: &Csr<Candidate>, e: EntityId, other: EntityId) -> f64 {
    if e.index() >= csr.rows() {
        return 0.0;
    }
    csr.row(e.index())
        .iter()
        .find(|&&(c, _)| c == other)
        .map(|&(_, v)| v)
        .unwrap_or(0.0)
}

/// Transposes a `rows -> (col, v)` CSR into a `cols -> (row, v)` CSR with
/// every output row sorted by [`cand_cmp`].
///
/// Parallel scheme: per-part column histograms, a sequential prefix-sum
/// handing each part a private cursor per column, then disjoint parallel
/// fills and per-row parallel sorts through [`SharedSlice`]. The fill
/// order within a column is ascending source row — identical to a
/// sequential transpose — and the final sort is a total order, so the
/// result does not depend on the thread count.
fn transpose(src: &Csr<Candidate>, n_cols: usize, exec: &Executor) -> Csr<Candidate> {
    let n_rows = src.rows();
    let ranges = exec.part_ranges(n_rows);
    let histograms: Vec<Vec<usize>> = exec.map_range(ranges.len(), |p| {
        let mut counts = vec![0usize; n_cols];
        for r in ranges[p].clone() {
            for &(c, _) in src.row(r) {
                counts[c.index()] += 1;
            }
        }
        counts
    });
    let mut lens = vec![0usize; n_cols];
    for h in &histograms {
        for (len, c) in lens.iter_mut().zip(h) {
            *len += c;
        }
    }
    let offsets = minoan_kb::csr::offsets_from_lens(&lens);
    // cursors[p][c]: where part p starts writing in column c.
    let mut cursors: Vec<Vec<usize>> = Vec::with_capacity(histograms.len());
    let mut acc = offsets[..n_cols].to_vec();
    for h in &histograms {
        cursors.push(acc.clone());
        for (a, c) in acc.iter_mut().zip(h) {
            *a += c;
        }
    }
    let total = *offsets.last().expect("offsets never empty");
    let mut items: Vec<Candidate> = vec![(EntityId(0), 0.0); total];
    {
        let shared = SharedSlice::new(&mut items);
        exec.map_range(ranges.len(), |p| {
            let mut cur = cursors[p].clone();
            for r in ranges[p].clone() {
                let row_entity = EntityId(r as u32);
                for &(c, v) in src.row(r) {
                    // SAFETY: part p exclusively owns positions
                    // cursors[p][c] .. cursors[p][c] + histograms[p][c]
                    // of every column c; parts never overlap.
                    unsafe { shared.write(cur[c.index()], (row_entity, v)) };
                    cur[c.index()] += 1;
                }
            }
        });
    }
    {
        let shared = SharedSlice::new(&mut items);
        exec.map_range(n_cols, |c| {
            // SAFETY: column ranges are disjoint slices of the buffer.
            let row = unsafe { shared.slice_mut(offsets[c]..offsets[c + 1]) };
            row.sort_unstable_by(cand_cmp);
        });
    }
    Csr::from_lens_and_items(&lens, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::token_blocking;
    use minoan_exec::ExecutorKind;
    use minoan_kb::{KbBuilder, KbPair};
    use minoan_text::Tokenizer;

    /// Two tiny movie KBs: movies m share a title token with their
    /// counterpart, actors are linked via `starring`.
    fn setup() -> (
        KbPair,
        TokenizedPair,
        BlockCollection,
        Vec<Vec<EntityId>>,
        Vec<Vec<EntityId>>,
    ) {
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:m0", "title", "zorba dance");
        a.add_uri("a:m0", "starring", "a:p0");
        a.add_literal("a:p0", "name", "anthony quinn");
        a.add_literal("a:m1", "title", "stella");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:m0", "label", "zorba the dance");
        b.add_uri("b:m0", "actor", "b:p0");
        b.add_literal("b:p0", "fullname", "quinn anthony");
        b.add_literal("b:m1", "label", "stella nights");
        let pair = KbPair::new(a.finish(), b.finish());
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&tokens);
        let tn1 = crate::importance::top_neighbors(&pair.first, 3, 32);
        let tn2 = crate::importance::top_neighbors(&pair.second, 3, 32);
        (pair, tokens, bt, tn1, tn2)
    }

    #[test]
    fn value_sims_match_direct_computation() {
        let (pair, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        for e1 in pair.first.entities() {
            for e2 in pair.second.entities() {
                let direct = minoan_sim::value_sim(&tokens, e1, e2);
                let indexed = idx.value_sim(e1, e2);
                assert!(
                    (direct - indexed).abs() < 1e-9,
                    "mismatch for {e1:?},{e2:?}: {direct} vs {indexed}"
                );
            }
        }
    }

    #[test]
    fn candidate_lists_are_sorted_desc() {
        let (_, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        for side in [KbSide::First, KbSide::Second] {
            for e in 0..tokens.entity_count(side) as u32 {
                let c = idx.value_candidates(side, EntityId(e));
                assert!(c.windows(2).all(|w| w[0].1 >= w[1].1));
            }
        }
    }

    #[test]
    fn neighbor_sim_propagates_actor_similarity_to_movies() {
        let (pair, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        let am0 = pair.first.entity_by_uri("a:m0").unwrap();
        let bm0 = pair.second.entity_by_uri("b:m0").unwrap();
        let ap0 = pair.first.entity_by_uri("a:p0").unwrap();
        let bp0 = pair.second.entity_by_uri("b:p0").unwrap();
        let actors = idx.value_sim(ap0, bp0);
        assert!(actors > 0.0);
        // The movies' neighbor similarity equals their actors' value sim.
        assert!((idx.neighbor_sim(am0, bm0) - actors).abs() < 1e-9);
        // And the actors' neighbor similarity equals the movies' value sim
        // (via the incoming edge).
        assert!((idx.neighbor_sim(ap0, bp0) - idx.value_sim(am0, bm0)).abs() < 1e-9);
    }

    #[test]
    fn non_cooccurring_pairs_have_zero_sims() {
        let (pair, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        let am1 = pair.first.entity_by_uri("a:m1").unwrap();
        let bm0 = pair.second.entity_by_uri("b:m0").unwrap();
        assert_eq!(idx.value_sim(am1, bm0), 0.0);
        assert_eq!(idx.neighbor_sim(am1, bm0), 0.0);
    }

    #[test]
    fn neighbor_candidates_only_contain_nonzero_entries() {
        let (_, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        for side in [KbSide::First, KbSide::Second] {
            for e in 0..tokens.entity_count(side) as u32 {
                for &(_, v) in idx.neighbor_candidates(side, EntityId(e)) {
                    assert!(v > 0.0);
                }
            }
        }
    }

    #[test]
    fn both_directions_agree() {
        let (_, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        for e1 in 0..tokens.entity_count(KbSide::First) as u32 {
            for &(e2, v) in idx.value_candidates(KbSide::First, EntityId(e1)) {
                let back = idx.value_candidates(KbSide::Second, e2);
                assert!(back
                    .iter()
                    .any(|&(e, bv)| e == EntityId(e1) && (bv - v).abs() < 1e-12));
            }
        }
    }

    #[test]
    fn top_value_candidate_is_the_argmax() {
        let (pair, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        let am0 = pair.first.entity_by_uri("a:m0").unwrap();
        let bm0 = pair.second.entity_by_uri("b:m0").unwrap();
        let (top, v) = idx.top_value_candidate(KbSide::First, am0).unwrap();
        assert_eq!(top, bm0);
        assert!(v > 0.0);
    }

    /// The executor-equivalence contract at unit scale: every shard count
    /// must reproduce the sequential index bit for bit.
    #[test]
    fn parallel_index_is_bit_identical_to_sequential() {
        let (_, tokens, bt, tn1, tn2) = setup();
        let seq = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        for threads in [2, 3, 5, 8] {
            let exec = Executor::new(ExecutorKind::Rayon, threads);
            let par = SimilarityIndex::build_with(&bt, &tokens, [&tn1, &tn2], &exec);
            for side in [KbSide::First, KbSide::Second] {
                for e in 0..tokens.entity_count(side) as u32 {
                    let e = EntityId(e);
                    assert_eq!(
                        seq.value_candidates(side, e),
                        par.value_candidates(side, e),
                        "value candidates differ for {side:?} {e} at {threads} threads"
                    );
                    assert_eq!(
                        seq.neighbor_candidates(side, e),
                        par.neighbor_candidates(side, e),
                        "neighbor candidates differ for {side:?} {e} at {threads} threads"
                    );
                }
            }
            assert_eq!(seq.pair_count(), par.pair_count());
            assert_eq!(seq.neighbor_pair_count(), par.neighbor_pair_count());
        }
    }

    #[test]
    fn empty_blocks_build_empty_index() {
        let (_, tokens, _, tn1, tn2) = setup();
        let empty = BlockCollection::new(minoan_blocking::BlockKind::Token, vec![], 4, 4);
        let idx = SimilarityIndex::build(&empty, &tokens, [&tn1, &tn2]);
        assert_eq!(idx.pair_count(), 0);
        assert_eq!(idx.neighbor_pair_count(), 0);
    }
}
