//! Reference numbers from the paper, for paper-vs-measured tables.
//!
//! Values are transcribed from the ICDE 2018 camera-ready. `None` means
//! the paper reports no number for that cell (`-` in Table III).

/// Table I (dataset statistics), one row per dataset in column order
/// Restaurant, Rexa-DBLP, BBCmusic-DBpedia, YAGO-IMDb.
#[derive(Debug, Clone, Copy)]
pub struct PaperDatasetStats {
    /// Dataset name.
    pub name: &'static str,
    /// `|E1|`, `|E2|` entity counts.
    pub entities: (u64, u64),
    /// Triples per side.
    pub triples: (u64, u64),
    /// Average tokens per side.
    pub avg_tokens: (f64, f64),
    /// Attribute counts per side.
    pub attributes: (u64, u64),
    /// Relation counts per side.
    pub relations: (u64, u64),
    /// Type counts per side.
    pub types: (u64, u64),
    /// Vocabulary counts per side.
    pub vocabularies: (u64, u64),
    /// Ground-truth matches.
    pub matches: u64,
}

/// The paper's Table I.
pub const PAPER_TABLE1: [PaperDatasetStats; 4] = [
    PaperDatasetStats {
        name: "Restaurant",
        entities: (339, 2256),
        triples: (1130, 7519),
        avg_tokens: (20.44, 20.61),
        attributes: (7, 7),
        relations: (2, 2),
        types: (3, 3),
        vocabularies: (2, 2),
        matches: 89,
    },
    PaperDatasetStats {
        name: "Rexa-DBLP",
        entities: (18_492, 2_650_832),
        triples: (87_519, 14_936_373),
        avg_tokens: (40.71, 59.24),
        attributes: (114, 145),
        relations: (103, 123),
        types: (4, 11),
        vocabularies: (4, 4),
        matches: 1309,
    },
    PaperDatasetStats {
        name: "BBCmusic-DBpedia",
        entities: (58_793, 256_602),
        triples: (456_304, 8_044_247),
        avg_tokens: (81.19, 324.75),
        attributes: (27, 10_953),
        relations: (9, 953),
        types: (4, 59_801),
        vocabularies: (4, 6),
        matches: 22_770,
    },
    PaperDatasetStats {
        name: "YAGO-IMDb",
        entities: (5_208_100, 5_328_774),
        triples: (27_547_595, 47_843_680),
        avg_tokens: (15.56, 12.49),
        attributes: (65, 29),
        relations: (4, 13),
        types: (11_767, 15),
        vocabularies: (3, 1),
        matches: 56_683,
    },
];

/// Table II (block statistics), per dataset.
#[derive(Debug, Clone, Copy)]
pub struct PaperBlockStats {
    /// Dataset name.
    pub name: &'static str,
    /// `|BN|` — number of name blocks.
    pub bn_blocks: f64,
    /// `|BT|` — number of token blocks.
    pub bt_blocks: f64,
    /// `||BN||` — comparisons in name blocks.
    pub bn_comparisons: f64,
    /// `||BT||` — comparisons in token blocks.
    pub bt_comparisons: f64,
    /// `|E1|·|E2|` — brute-force comparisons.
    pub cartesian: f64,
    /// Block precision (%), recall (%), F1 (%).
    pub precision: f64,
    /// Recall (%).
    pub recall: f64,
    /// F1 (%).
    pub f1: f64,
}

/// The paper's Table II.
pub const PAPER_TABLE2: [PaperBlockStats; 4] = [
    PaperBlockStats {
        name: "Restaurant",
        bn_blocks: 83.0,
        bt_blocks: 625.0,
        bn_comparisons: 83.0,
        bt_comparisons: 1.80e3,
        cartesian: 7.65e5,
        precision: 4.95,
        recall: 100.0,
        f1: 9.43,
    },
    PaperBlockStats {
        name: "Rexa-DBLP",
        bn_blocks: 15_912.0,
        bt_blocks: 22_297.0,
        bn_comparisons: 6.71e7,
        bt_comparisons: 6.54e8,
        cartesian: 4.90e10,
        precision: 1.81e-4,
        recall: 99.77,
        f1: 3.62e-4,
    },
    PaperBlockStats {
        name: "BBCmusic-DBpedia",
        bn_blocks: 28_844.0,
        bt_blocks: 54_380.0,
        bn_comparisons: 1.25e7,
        bt_comparisons: 1.73e8,
        cartesian: 1.51e10,
        precision: 0.01,
        recall: 99.83,
        f1: 0.02,
    },
    PaperBlockStats {
        name: "YAGO-IMDb",
        bn_blocks: 580_518.0,
        bt_blocks: 495_973.0,
        bn_comparisons: 6.59e6,
        bt_comparisons: 2.28e10,
        cartesian: 2.78e13,
        precision: 2.46e-4,
        recall: 99.35,
        f1: 4.92e-4,
    },
];

/// Table III: per method per dataset `(precision, recall, f1)` in
/// percent, `None` where the paper prints `-`.
#[derive(Debug, Clone, Copy)]
pub struct PaperMethodRow {
    /// Method name as printed in the paper.
    pub method: &'static str,
    /// Whether this repository re-runs the method (vs quoting the paper).
    pub reimplemented: bool,
    /// `(P, R, F1)` per dataset in the Table I column order.
    pub cells: [Option<(f64, f64, f64)>; 4],
}

/// The paper's Table III.
pub const PAPER_TABLE3: [PaperMethodRow; 6] = [
    PaperMethodRow {
        method: "SiGMa",
        reimplemented: true,
        cells: [
            Some((99.0, 94.0, 97.0)),
            Some((97.0, 90.0, 94.0)),
            None,
            Some((98.0, 85.0, 91.0)),
        ],
    },
    PaperMethodRow {
        method: "LINDA",
        reimplemented: false,
        cells: [Some((100.0, 63.0, 77.0)), None, None, None],
    },
    PaperMethodRow {
        method: "RiMOM",
        reimplemented: false,
        cells: [
            Some((86.0, 77.0, 81.0)),
            Some((80.0, 72.0, 76.0)),
            None,
            None,
        ],
    },
    PaperMethodRow {
        method: "PARIS",
        reimplemented: true,
        cells: [
            Some((95.0, 88.0, 91.0)),
            Some((93.95, 89.0, 91.41)),
            Some((19.40, 0.29, 0.51)),
            Some((94.0, 90.0, 92.0)),
        ],
    },
    PaperMethodRow {
        method: "BSL",
        reimplemented: true,
        cells: [
            Some((100.0, 100.0, 100.0)),
            Some((96.57, 83.96, 89.82)),
            Some((85.20, 36.09, 50.70)),
            Some((11.68, 4.87, 6.88)),
        ],
    },
    PaperMethodRow {
        method: "MinoanER",
        reimplemented: true,
        cells: [
            Some((100.0, 100.0, 100.0)),
            Some((96.74, 95.34, 96.04)),
            Some((91.44, 88.55, 89.97)),
            Some((91.02, 90.57, 90.79)),
        ],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_all_four_datasets() {
        assert_eq!(PAPER_TABLE1.len(), 4);
        assert_eq!(PAPER_TABLE2.len(), 4);
        for (t1, t2) in PAPER_TABLE1.iter().zip(PAPER_TABLE2.iter()) {
            assert_eq!(t1.name, t2.name);
        }
    }

    #[test]
    fn minoaner_row_is_complete() {
        let row = PAPER_TABLE3.last().unwrap();
        assert_eq!(row.method, "MinoanER");
        assert!(row.cells.iter().all(Option::is_some));
    }

    #[test]
    fn block_recall_exceeds_99_percent_everywhere() {
        for r in PAPER_TABLE2 {
            assert!(r.recall > 99.0, "{}", r.name);
        }
    }
}
