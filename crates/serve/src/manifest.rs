//! Batch manifests: which KB pairs to resolve, with what parameters.
//!
//! A manifest is a TOML (subset, see [`crate::toml`]) or JSON document
//! listing resolution jobs plus fleet-level scheduling knobs:
//!
//! ```toml
//! slots = 4               # pair-level parallelism (0 = one slot per core)
//! threads = 0             # total worker-thread budget (0 = all cores)
//! memory_budget_mib = 512 # bounded-memory admission (0 = unlimited)
//! timeout_ms = 0          # default per-job deadline (0 = none)
//! max_retries = 0         # default transient-failure retry budget
//!
//! [[job]]                 # synthetic job: a benchmark profile
//! name = "rexa-small"
//! dataset = "rexa"        # restaurant | rexa | bbc | yago
//! seed = 20180416
//! scale = 0.1
//!
//! [[job]]                 # file job: on-disk KBs (.tsv / .nt)
//! name = "films"
//! first = "data/yago.nt"
//! second = "data/imdb.tsv"
//! truth = "data/truth.tsv" # optional ground truth (2-column TSV)
//! theta = 0.5              # optional per-job overrides
//! k = 10
//! purge = false
//! timeout_ms = 60000       # per-job deadline override
//! max_retries = 2          # per-job retry budget override
//! ```
//!
//! The JSON spelling is the same object shape with a `jobs` array. The
//! scheduler admits jobs in manifest order under the memory budget: a
//! job's footprint is **estimated before loading anything** — from the
//! profile's entity budget for synthetic jobs ([`JobSpec::estimated_bytes`])
//! and from on-disk file sizes for file jobs — and the job waits until
//! the in-flight estimate leaves room (the head job always runs alone
//! rather than deadlocking when it is bigger than the whole budget).

use std::path::{Path, PathBuf};

use minoan_core::MinoanConfig;
use minoan_datagen::DatasetKind;
use minoan_kb::Json;

use crate::toml::parse_toml;

/// Estimated resident bytes per synthetic entity once parsed, tokenized,
/// blocked and indexed (measured on the benchmark profiles, rounded up).
pub const BYTES_PER_ENTITY: u64 = 4 << 10;

/// Estimated in-memory blow-up of an on-disk KB file after parsing,
/// tokenization, blocking and similarity indexing.
pub const FILE_FOOTPRINT_FACTOR: u64 = 12;

/// The input of one resolution job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobInput {
    /// A synthetic benchmark profile (deterministic in seed and scale).
    Synthetic {
        /// Which profile to generate.
        kind: DatasetKind,
        /// Generation seed.
        seed: u64,
        /// Entity-count scale factor.
        scale: f64,
    },
    /// Two on-disk KB files (`.nt`/`.ntriples` or TSV).
    Files {
        /// First KB path.
        first: PathBuf,
        /// Second KB path.
        second: PathBuf,
    },
    /// An incremental patch of a persisted index artifact
    /// (`PATCH /v1/indexes/{id}`). Like [`JobSpec::persist`], this is an
    /// *internal* input set by the serving layer — the manifest wire
    /// schema never parses it, so clients cannot aim patches at
    /// arbitrary filesystem paths.
    IndexPatch {
        /// The index id (registry key, also the artifact file stem).
        id: String,
        /// The artifact file to patch.
        path: PathBuf,
        /// The delta stream to apply, in order.
        ops: Vec<minoan_kb::DeltaOp>,
    },
}

/// One resolution job: a KB pair plus optional parameter overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job name (report key).
    pub name: String,
    /// Where the KB pair comes from.
    pub input: JobInput,
    /// Optional ground-truth file (2-column TSV of matching URIs).
    /// Synthetic jobs carry their own ground truth and ignore this.
    pub truth: Option<PathBuf>,
    /// Per-job `θ` override.
    pub theta: Option<f64>,
    /// Per-job `K` (candidate list size) override.
    pub candidates_k: Option<usize>,
    /// Per-job Block Purging override.
    pub purge_blocks: Option<bool>,
    /// Per-job run deadline in milliseconds, measured from dispatch
    /// (`None` = inherit the fleet default; `Some(0)` = explicitly no
    /// deadline). A job past its deadline unwinds at the next
    /// checkpoint and reports `timed_out`.
    pub timeout_ms: Option<u64>,
    /// Per-job retry budget for *transient* failures (IO errors, fault
    /// stalls, timeouts). `None` = inherit the fleet default, which
    /// itself defaults to `0` — no retries, so fingerprint gates see
    /// exactly one attempt unless a manifest opts in.
    pub max_retries: Option<u32>,
    /// Where to persist the built index artifact, if anywhere. This is
    /// an *internal* field set by the serving layer for
    /// `POST /v1/indexes` builds — it is not part of the manifest wire
    /// schema ([`JobSpec::from_json`] never sets it, [`JobSpec::to_json`]
    /// never emits it), so clients cannot point the daemon at arbitrary
    /// filesystem paths.
    pub persist: Option<PathBuf>,
}

impl JobSpec {
    /// Parses one job from the manifest job schema — the same object
    /// shape a `[[job]]` table or `jobs` array element uses, and the
    /// shape the daemon's `submit` op takes over the wire.
    pub fn from_json(json: &Json) -> Result<JobSpec, String> {
        job_from_json(json)
    }

    /// Serializes this job as its JSON spelling (round-trips through
    /// [`JobSpec::from_json`]).
    pub fn to_json(&self) -> Json {
        job_to_json(self)
    }

    /// Validates this job on its own: non-empty name, parameters in
    /// range. (Cross-job rules like name uniqueness live in
    /// [`Manifest::validate`]; a daemon accepts repeated names because
    /// ids, not names, key its reports.)
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("job has an empty name".into());
        }
        if let JobInput::Synthetic { scale, .. } = self.input {
            let positive = scale.is_finite() && scale > 0.0;
            if !positive {
                return Err(format!("scale must be positive, got {scale}"));
            }
        }
        if let Some(theta) = self.theta {
            if !(0.0 < theta && theta < 1.0) {
                return Err(format!("theta must be in (0,1), got {theta}"));
            }
        }
        if self.candidates_k == Some(0) {
            return Err("k must be at least 1".into());
        }
        Ok(())
    }

    /// The matching configuration for this job: `base` with this job's
    /// overrides applied. Executor fields of `base` are irrelevant — the
    /// scheduler hands the pipeline an executor directly.
    pub fn config(&self, base: &MinoanConfig) -> MinoanConfig {
        let mut config = base.clone();
        if let Some(theta) = self.theta {
            config.theta = theta;
        }
        if let Some(k) = self.candidates_k {
            config.candidates_k = k;
        }
        if let Some(purge) = self.purge_blocks {
            config.purge_blocks = purge;
        }
        config
    }

    /// Estimated peak resident footprint of running this job, computed
    /// **before** loading anything: synthetic jobs scale the profile's
    /// entity budget ([`DatasetKind::approx_entities`], the KB-stats
    /// side of admission), file jobs scale the on-disk sizes. A file
    /// that cannot be stat-ed estimates as zero — the job will fail
    /// cleanly at load time instead.
    pub fn estimated_bytes(&self) -> u64 {
        match &self.input {
            JobInput::Synthetic { kind, scale, .. } => {
                kind.approx_entities(*scale) as u64 * BYTES_PER_ENTITY
            }
            JobInput::Files { first, second } => {
                let size = |p: &PathBuf| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
                (size(first) + size(second)) * FILE_FOOTPRINT_FACTOR
            }
            JobInput::IndexPatch { path, .. } => {
                // The artifact is a flat serialization of the loaded
                // structures, so resident ≈ file size; ×3 covers the
                // loaded copy, the patch scratch and the re-encode.
                std::fs::metadata(path).map(|m| m.len()).unwrap_or(0) * 3
            }
        }
    }

    /// The calibration bucket this job's footprint estimate belongs to:
    /// jobs of one profile share an estimate formula, so they share a
    /// measured estimate-accuracy ratio too (see the scheduler's
    /// self-calibrating admission). Synthetic jobs bucket by dataset
    /// profile, file jobs all share the `"file"` bucket.
    pub fn profile_key(&self) -> &'static str {
        match &self.input {
            JobInput::Synthetic { kind, .. } => kind.name(),
            JobInput::Files { .. } => "file",
            JobInput::IndexPatch { .. } => "patch",
        }
    }
}

/// A parsed batch manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Fleet slots: maximum concurrently running jobs (`0` = one per
    /// available core, clamped to the job count).
    pub slots: usize,
    /// Total worker-thread budget shared by all running jobs (`0` = all
    /// available cores).
    pub threads: usize,
    /// Memory budget for admission, in MiB (`0` = unlimited).
    pub memory_budget_mib: usize,
    /// Fleet-level default run deadline in milliseconds (`0` = no
    /// deadline). Jobs can override with their own `timeout_ms`.
    pub timeout_ms: u64,
    /// Fleet-level default retry budget for transient failures (`0` =
    /// no retries). Jobs can override with their own `max_retries`.
    pub max_retries: u32,
    /// The jobs, in admission order.
    pub jobs: Vec<JobSpec>,
}

impl Manifest {
    /// Loads a manifest from `path`, choosing the format by extension
    /// (`.toml` vs `.json`; anything else tries TOML first).
    pub fn load(path: &Path) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let is_json = path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("json"));
        let result = if is_json {
            Manifest::parse_json(&text)
        } else {
            Manifest::parse_toml(&text)
        };
        result.map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the TOML spelling.
    pub fn parse_toml(text: &str) -> Result<Manifest, String> {
        Manifest::from_json(&parse_toml(text)?)
    }

    /// Parses the JSON spelling.
    pub fn parse_json(text: &str) -> Result<Manifest, String> {
        Manifest::from_json(&Json::parse(text)?)
    }

    /// Builds a manifest from the common JSON object shape. The job list
    /// may be spelled `jobs` (JSON) or `job` (TOML array-of-tables).
    /// Unknown fields error, like [`MinoanConfig::from_json`].
    pub fn from_json(json: &Json) -> Result<Manifest, String> {
        let Json::Obj(fields) = json else {
            return Err("manifest must be an object".into());
        };
        let mut manifest = Manifest {
            slots: 0,
            threads: 0,
            memory_budget_mib: 0,
            timeout_ms: 0,
            max_retries: 0,
            jobs: Vec::new(),
        };
        for (key, value) in fields {
            let bad = || format!("bad value for {key}");
            match key.as_str() {
                "slots" => manifest.slots = value.as_usize().ok_or_else(bad)?,
                "threads" => manifest.threads = value.as_usize().ok_or_else(bad)?,
                "memory_budget_mib" => {
                    manifest.memory_budget_mib = value.as_usize().ok_or_else(bad)?
                }
                "timeout_ms" => manifest.timeout_ms = value.as_usize().ok_or_else(bad)? as u64,
                "max_retries" => {
                    manifest.max_retries =
                        u32::try_from(value.as_usize().ok_or_else(bad)?).map_err(|_| bad())?
                }
                "job" | "jobs" => {
                    let Json::Arr(items) = value else {
                        return Err(format!("{key} must be an array"));
                    };
                    for (i, item) in items.iter().enumerate() {
                        manifest
                            .jobs
                            .push(job_from_json(item).map_err(|e| format!("job #{}: {e}", i + 1))?);
                    }
                }
                other => return Err(format!("unknown manifest field {other:?}")),
            }
        }
        manifest.validate()?;
        Ok(manifest)
    }

    /// Validates the manifest: at least one job, unique names, per-job
    /// rules ([`JobSpec::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.jobs.is_empty() {
            return Err("manifest has no jobs".into());
        }
        for (i, job) in self.jobs.iter().enumerate() {
            if job.name.is_empty() {
                return Err(format!("job #{} has an empty name", i + 1));
            }
            let ctx = |msg: String| format!("job #{} ({}): {msg}", i + 1, job.name);
            if self.jobs[..i].iter().any(|j| j.name == job.name) {
                return Err(ctx("duplicate job name".into()));
            }
            job.validate().map_err(ctx)?;
        }
        Ok(())
    }

    /// Serializes the manifest as its JSON spelling (round-trips through
    /// [`Manifest::from_json`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("slots", Json::num(self.slots as f64)),
            ("threads", Json::num(self.threads as f64)),
            (
                "memory_budget_mib",
                Json::num(self.memory_budget_mib as f64),
            ),
            ("timeout_ms", Json::num(self.timeout_ms as f64)),
            ("max_retries", Json::num(self.max_retries as f64)),
            ("jobs", Json::arr(self.jobs.iter().map(job_to_json))),
        ])
    }
}

/// Parses the `dataset` field of a synthetic job.
pub fn parse_dataset_kind(name: &str) -> Result<DatasetKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "restaurant" => Ok(DatasetKind::Restaurant),
        "rexa" | "rexa-dblp" => Ok(DatasetKind::RexaDblp),
        "bbc" | "bbcmusic-dbpedia" => Ok(DatasetKind::BbcDbpedia),
        "yago" | "yago-imdb" => Ok(DatasetKind::YagoImdb),
        other => Err(format!(
            "unknown dataset {other:?} (expected restaurant|rexa|bbc|yago)"
        )),
    }
}

fn job_from_json(json: &Json) -> Result<JobSpec, String> {
    let Json::Obj(fields) = json else {
        return Err("job must be an object".into());
    };
    let mut name = None;
    let mut dataset = None;
    let mut seed: Option<u64> = None;
    let mut scale: Option<f64> = None;
    let mut first = None;
    let mut second = None;
    let mut truth = None;
    let mut theta = None;
    let mut candidates_k = None;
    let mut purge_blocks = None;
    let mut timeout_ms = None;
    let mut max_retries = None;
    for (key, value) in fields {
        let bad = || format!("bad value for {key}");
        match key.as_str() {
            "name" => name = Some(value.as_str().ok_or_else(bad)?.to_string()),
            "dataset" => dataset = Some(parse_dataset_kind(value.as_str().ok_or_else(bad)?)?),
            "seed" => {
                let s = value.as_usize().ok_or_else(bad)?;
                // Manifest numbers travel through f64: a seed above 2^53
                // would already have been rounded by the number parse,
                // silently running a different seed than written. A
                // parsed value of exactly 2^53 is indistinguishable from
                // a rounded 2^53+1, so the boundary itself is rejected
                // too.
                if s >= (1 << f64::MANTISSA_DIGITS) {
                    return Err(format!(
                        "seed {s} is not exactly representable in the manifest \
                         number format (seeds must be below 2^{})",
                        f64::MANTISSA_DIGITS
                    ));
                }
                seed = Some(s as u64);
            }
            "scale" => scale = Some(value.as_f64().ok_or_else(bad)?),
            "first" => first = Some(PathBuf::from(value.as_str().ok_or_else(bad)?)),
            "second" => second = Some(PathBuf::from(value.as_str().ok_or_else(bad)?)),
            "truth" => truth = Some(PathBuf::from(value.as_str().ok_or_else(bad)?)),
            "theta" => theta = Some(value.as_f64().ok_or_else(bad)?),
            "k" => candidates_k = Some(value.as_usize().ok_or_else(bad)?),
            "purge" => purge_blocks = Some(value.as_bool().ok_or_else(bad)?),
            "timeout_ms" => timeout_ms = Some(value.as_usize().ok_or_else(bad)? as u64),
            "max_retries" => {
                max_retries =
                    Some(u32::try_from(value.as_usize().ok_or_else(bad)?).map_err(|_| bad())?)
            }
            other => return Err(format!("unknown job field {other:?}")),
        }
    }
    let name = name.ok_or("job needs a name")?;
    let input = match (dataset, first, second) {
        (Some(kind), None, None) => JobInput::Synthetic {
            kind,
            seed: seed.unwrap_or(20180416),
            scale: scale.unwrap_or(1.0),
        },
        (None, Some(first), Some(second)) => {
            // Same strictness as unknown fields: a synthetic-only knob
            // on a file job would otherwise be silently dropped.
            if seed.is_some() || scale.is_some() {
                return Err("seed/scale apply to synthetic jobs only, not file jobs".into());
            }
            JobInput::Files { first, second }
        }
        (Some(_), _, _) => {
            return Err(
                "a job is either synthetic (dataset) or file-based (first/second), not both".into(),
            )
        }
        _ => return Err("job needs either dataset or first+second".into()),
    };
    Ok(JobSpec {
        name,
        input,
        truth,
        theta,
        candidates_k,
        purge_blocks,
        timeout_ms,
        max_retries,
        persist: None,
    })
}

fn job_to_json(job: &JobSpec) -> Json {
    let mut fields: Vec<(String, Json)> = vec![("name".into(), Json::str(&job.name))];
    match &job.input {
        JobInput::Synthetic { kind, seed, scale } => {
            let spelled = match kind {
                DatasetKind::Restaurant => "restaurant",
                DatasetKind::RexaDblp => "rexa",
                DatasetKind::BbcDbpedia => "bbc",
                DatasetKind::YagoImdb => "yago",
            };
            fields.push(("dataset".into(), Json::str(spelled)));
            fields.push(("seed".into(), Json::num(*seed as f64)));
            fields.push(("scale".into(), Json::Num(*scale)));
        }
        JobInput::Files { first, second } => {
            fields.push(("first".into(), Json::str(first.display().to_string())));
            fields.push(("second".into(), Json::str(second.display().to_string())));
        }
        JobInput::IndexPatch { id, ops, .. } => {
            // Internal input: reported for observability (job listings),
            // never re-parsed — `job_from_json` treats these fields as
            // unknown, exactly like `persist`.
            fields.push(("index_patch".into(), Json::str(id)));
            fields.push(("delta_ops".into(), Json::num(ops.len() as f64)));
        }
    }
    if let Some(truth) = &job.truth {
        fields.push(("truth".into(), Json::str(truth.display().to_string())));
    }
    if let Some(theta) = job.theta {
        fields.push(("theta".into(), Json::Num(theta)));
    }
    if let Some(k) = job.candidates_k {
        fields.push(("k".into(), Json::num(k as f64)));
    }
    if let Some(purge) = job.purge_blocks {
        fields.push(("purge".into(), Json::Bool(purge)));
    }
    if let Some(timeout) = job.timeout_ms {
        fields.push(("timeout_ms".into(), Json::num(timeout as f64)));
    }
    if let Some(retries) = job.max_retries {
        fields.push(("max_retries".into(), Json::num(retries as f64)));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = "\
slots = 2\nthreads = 4\nmemory_budget_mib = 256\ntimeout_ms = 90000\nmax_retries = 1\n\
[[job]]\nname = \"syn\"\ndataset = \"rexa\"\nseed = 7\nscale = 0.25\ntimeout_ms = 500\nmax_retries = 3\n\
[[job]]\nname = \"fil\"\nfirst = \"a.tsv\"\nsecond = \"b.nt\"\ntruth = \"t.tsv\"\ntheta = 0.5\nk = 9\npurge = false\n";

    #[test]
    fn toml_manifest_parses() {
        let m = Manifest::parse_toml(TOML).unwrap();
        assert_eq!(m.slots, 2);
        assert_eq!(m.threads, 4);
        assert_eq!(m.memory_budget_mib, 256);
        assert_eq!(m.timeout_ms, 90000, "fleet-level deadline default");
        assert_eq!(m.max_retries, 1, "fleet-level retry default");
        assert_eq!(m.jobs.len(), 2);
        assert_eq!(m.jobs[0].timeout_ms, Some(500), "per-job override");
        assert_eq!(m.jobs[0].max_retries, Some(3));
        assert_eq!(m.jobs[1].timeout_ms, None, "inherits the fleet default");
        assert_eq!(m.jobs[1].max_retries, None);
        assert_eq!(
            m.jobs[0].input,
            JobInput::Synthetic {
                kind: DatasetKind::RexaDblp,
                seed: 7,
                scale: 0.25
            }
        );
        assert_eq!(m.jobs[1].theta, Some(0.5));
        assert_eq!(m.jobs[1].candidates_k, Some(9));
        assert_eq!(m.jobs[1].purge_blocks, Some(false));
        assert_eq!(m.jobs[1].truth.as_deref(), Some(Path::new("t.tsv")));
    }

    #[test]
    fn json_round_trip() {
        let m = Manifest::parse_toml(TOML).unwrap();
        let back = Manifest::parse_json(&m.to_json().pretty()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn overrides_apply_to_config() {
        let m = Manifest::parse_toml(TOML).unwrap();
        let base = MinoanConfig::default();
        let c0 = m.jobs[0].config(&base);
        assert_eq!(c0.theta, base.theta, "no override keeps the base");
        let c1 = m.jobs[1].config(&base);
        assert_eq!(c1.theta, 0.5);
        assert_eq!(c1.candidates_k, 9);
        assert!(!c1.purge_blocks);
    }

    #[test]
    fn synthetic_estimates_scale_with_entities() {
        let small = JobSpec {
            name: "s".into(),
            input: JobInput::Synthetic {
                kind: DatasetKind::RexaDblp,
                seed: 1,
                scale: 0.1,
            },
            truth: None,
            theta: None,
            candidates_k: None,
            purge_blocks: None,
            timeout_ms: None,
            max_retries: None,
            persist: None,
        };
        let mut big = small.clone();
        big.input = JobInput::Synthetic {
            kind: DatasetKind::RexaDblp,
            seed: 1,
            scale: 1.0,
        };
        assert!(small.estimated_bytes() > 0);
        assert!(big.estimated_bytes() > 5 * small.estimated_bytes());
    }

    #[test]
    fn bad_manifests_are_rejected() {
        for (text, needle) in [
            ("slots = 1\n", "no jobs"),
            ("[[job]]\ndataset = \"rexa\"\n", "needs a name"),
            ("[[job]]\nname = \"x\"\n", "either dataset or"),
            (
                "[[job]]\nname = \"x\"\ndataset = \"rexa\"\nfirst = \"a\"\nsecond = \"b\"\n",
                "not both",
            ),
            (
                "[[job]]\nname = \"x\"\ndataset = \"mars\"\n",
                "unknown dataset",
            ),
            (
                "[[job]]\nname = \"x\"\ndataset = \"rexa\"\ntheta = 1.5\n",
                "theta",
            ),
            (
                "[[job]]\nname = \"x\"\ndataset = \"rexa\"\nscale = 0\n",
                "scale",
            ),
            (
                "[[job]]\nname = \"x\"\ndataset = \"rexa\"\n[[job]]\nname = \"x\"\ndataset = \"bbc\"\n",
                "duplicate",
            ),
            ("wat = 1\n", "unknown manifest field"),
            ("[[job]]\nname = \"x\"\ndataset = \"rexa\"\nwat = 1\n", "unknown job field"),
            // 2^53 + 1: rounds to 2^53 in the f64 number pipeline, so it
            // must be rejected rather than silently run as a neighbor.
            (
                "[[job]]\nname = \"x\"\ndataset = \"rexa\"\nseed = 9007199254740993\n",
                "not exactly representable",
            ),
            (
                "[[job]]\nname = \"x\"\nfirst = \"a.tsv\"\nsecond = \"b.tsv\"\nscale = 0.1\n",
                "synthetic jobs only",
            ),
        ] {
            let err = Manifest::parse_toml(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }
}
