//! Parameter ablations for the paper's robustness claim (§IV): the
//! configuration `K=15, N=3, k=2, θ=0.6` "yields robust performance
//! across all datasets".
//!
//! Usage: `ablation_params [scale] [seed] [dataset]` — sweeps each
//! parameter around its default and prints MinoanER's F1, plus a
//! purging on/off ablation.

use minoan_core::{MinoanConfig, MinoanEr};
use minoan_datagen::{Dataset, DatasetKind};
use minoan_eval::{MatchQuality, Table};

fn f1(d: &Dataset, config: MinoanConfig) -> f64 {
    let out = MinoanEr::new(config).expect("valid config").run(&d.pair);
    MatchQuality::evaluate(&out.matching, &d.truth).f1()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.3);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(minoan_bench::DEFAULT_SEED);
    let kinds: Vec<DatasetKind> = match args.next().as_deref() {
        Some("restaurant") => vec![DatasetKind::Restaurant],
        Some("rexa") => vec![DatasetKind::RexaDblp],
        Some("bbc") => vec![DatasetKind::BbcDbpedia],
        Some("yago") => vec![DatasetKind::YagoImdb],
        _ => DatasetKind::ALL.to_vec(),
    };
    println!("Parameter ablations (seed {seed}, scale {scale})\n");
    let datasets: Vec<Dataset> = kinds
        .iter()
        .map(|k| k.generate_scaled(seed, scale))
        .collect();
    let headers: Vec<&str> = std::iter::once("configuration")
        .chain(datasets.iter().map(|d| d.name.as_str()))
        .collect();
    let mut table = Table::new(&headers);
    let row = |label: String, make: &dyn Fn() -> MinoanConfig, t: &mut Table, ds: &[Dataset]| {
        let mut cells = vec![label];
        for d in ds {
            cells.push(format!("{:.1}", f1(d, make()) * 100.0));
        }
        t.row(&cells);
    };

    row(
        "default (K=15,N=3,k=2,th=0.6)".into(),
        &MinoanConfig::default,
        &mut table,
        &datasets,
    );
    table.separator();
    for theta in [0.2, 0.4, 0.6, 0.8] {
        row(
            format!("theta={theta}"),
            &move || MinoanConfig {
                theta,
                ..Default::default()
            },
            &mut table,
            &datasets,
        );
    }
    table.separator();
    for k in [1, 5, 15, 30] {
        row(
            format!("K={k}"),
            &move || MinoanConfig {
                candidates_k: k,
                ..Default::default()
            },
            &mut table,
            &datasets,
        );
    }
    table.separator();
    for n in [1, 3, 5] {
        row(
            format!("N={n}"),
            &move || MinoanConfig {
                top_relations_n: n,
                ..Default::default()
            },
            &mut table,
            &datasets,
        );
    }
    table.separator();
    for name_k in [1, 2, 4] {
        row(
            format!("k={name_k}"),
            &move || MinoanConfig {
                name_attrs_k: name_k,
                ..Default::default()
            },
            &mut table,
            &datasets,
        );
    }
    table.separator();
    row(
        "purging off".into(),
        &|| MinoanConfig {
            purge_blocks: false,
            ..Default::default()
        },
        &mut table,
        &datasets,
    );
    println!("{}", table.render());
}
