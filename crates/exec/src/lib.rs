//! # minoan-exec — the executor layer of MinoanER
//!
//! MinoanER is a *massively parallel* ER method: the paper's efficiency
//! argument (§III) is that every similarity is a function of block
//! statistics computed in one data-parallel pass over blocks. This crate
//! provides the executor abstraction the hot layers (blocking, similarity
//! indexing, matching) run on:
//!
//! - [`Executor`] with a [`Sequential`](ExecutorKind::Sequential) and a
//!   [`Rayon`](ExecutorKind::Rayon) backend, selected by configuration;
//! - ordered fan-out primitives ([`Executor::map_parts`],
//!   [`Executor::map_range`]) whose merged output is **independent of the
//!   thread count**, so parallel runs are bit-identical to sequential
//!   ones by construction;
//! - [`SharedSlice`], the unsafe-but-audited escape hatch for writing
//!   disjoint index ranges of one buffer from multiple threads (CSR
//!   fills and transposes);
//! - [`CancelToken`], cooperative cancellation observed at
//!   [checkpoints](CancelToken::checkpoint) **between** waves — a
//!   dispatched fan-out always completes, so cancellation never produces
//!   partial merges, and a cancelled stage unwinds with [`Cancelled`]
//!   within one wave of work.
//!
//! Design rule for all call sites: a parallel algorithm must produce the
//! *same bytes* as its one-part sequential specialization. Partial
//! results are always merged in part order, floating-point accumulation
//! order per key is kept identical across shard counts, and ties are
//! broken by entity id — never by thread arrival order.

#![warn(missing_docs)]

pub mod cancel;
pub mod shared;

pub use cancel::{CancelToken, Cancelled};
pub use shared::SharedSlice;

use std::fmt;
use std::ops::Range;
use std::str::FromStr;

/// Which backend an [`Executor`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutorKind {
    /// Everything on the calling thread, one part per fan-out.
    Sequential,
    /// Data-parallel over the rayon backend (structured scoped threads).
    #[default]
    Rayon,
}

impl ExecutorKind {
    /// Canonical lower-case name (`"sequential"` / `"rayon"`).
    pub fn name(self) -> &'static str {
        match self {
            ExecutorKind::Sequential => "sequential",
            ExecutorKind::Rayon => "rayon",
        }
    }
}

impl fmt::Display for ExecutorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ExecutorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sequential" | "seq" | "serial" => Ok(ExecutorKind::Sequential),
            "rayon" | "parallel" | "par" => Ok(ExecutorKind::Rayon),
            other => Err(format!(
                "unknown executor {other:?} (expected sequential|rayon)"
            )),
        }
    }
}

/// Hard cap on worker threads. The rayon backend spawns one scoped OS
/// thread per part, so an absurd `--threads` request must not translate
/// into an absurd spawn count.
pub const MAX_THREADS: usize = 256;

/// A configured executor: backend plus thread budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    kind: ExecutorKind,
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(ExecutorKind::default(), 0)
    }
}

impl Executor {
    /// An executor of `kind` with a thread budget (`0` = all available).
    pub fn new(kind: ExecutorKind, threads: usize) -> Self {
        Self { kind, threads }
    }

    /// The sequential executor.
    pub fn sequential() -> Self {
        Self::new(ExecutorKind::Sequential, 1)
    }

    /// The rayon executor using all available parallelism.
    pub fn rayon() -> Self {
        Self::new(ExecutorKind::Rayon, 0)
    }

    /// The backend kind.
    pub fn kind(&self) -> ExecutorKind {
        self.kind
    }

    /// Effective number of worker threads (always in
    /// `1..=`[`MAX_THREADS`]; `Sequential` is 1).
    pub fn threads(&self) -> usize {
        match self.kind {
            ExecutorKind::Sequential => 1,
            ExecutorKind::Rayon => {
                let requested = if self.threads == 0 {
                    rayon::current_num_threads()
                } else {
                    self.threads
                };
                requested.clamp(1, MAX_THREADS)
            }
        }
    }

    /// Splits `0..n` into at most [`Executor::threads`] contiguous,
    /// balanced, ascending ranges. Deterministic in `n` and the thread
    /// count; never returns an empty range (and returns no ranges for
    /// `n == 0`).
    pub fn part_ranges(&self, n: usize) -> Vec<Range<usize>> {
        if n == 0 {
            return Vec::new();
        }
        let parts = self.threads().min(n).max(1);
        let base = n / parts;
        let extra = n % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0;
        for p in 0..parts {
            let len = base + usize::from(p < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }

    /// Runs `f` over each range, one scoped thread per range (or inline
    /// when there is at most one), returning results **in range order**.
    /// The shared fan-out behind [`Executor::map_parts`] and
    /// [`Executor::map_chunks`].
    fn run_ranges<R, F>(ranges: Vec<Range<usize>>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        if ranges.len() <= 1 {
            return ranges.into_iter().map(f).collect();
        }
        let mut out: Vec<Option<R>> = ranges.iter().map(|_| None).collect();
        rayon::scope(|s| {
            let f = &f;
            for (slot, range) in out.iter_mut().zip(ranges) {
                s.spawn(move || {
                    *slot = Some(f(range));
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("executor range did not run"))
            .collect()
    }

    /// Fans `f` out over the part ranges of `0..n`, returning one result
    /// per part **in part order**. The sequential backend runs a single
    /// part covering the whole range, so `map_parts` callers that merge
    /// partials by concatenation degrade to the plain sequential
    /// algorithm.
    pub fn map_parts<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        Self::run_ranges(self.part_ranges(n), f)
    }

    /// Maps `f` over `0..n`, returning results in index order.
    pub fn map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut parts = self.map_parts(n, |range| range.map(&f).collect::<Vec<R>>());
        if parts.len() == 1 {
            return parts.pop().expect("one part");
        }
        let mut out = Vec::with_capacity(n);
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Runs `f` once per shard id in `0..shards`, returning results in
    /// shard order. Exactly [`Executor::map_range`], named for call sites
    /// that fan out over ownership shards (`key % shards`) rather than
    /// index ranges.
    pub fn map_shards<R, F>(&self, shards: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.map_range(shards, f)
    }

    /// Splits `0..len` into at most [`Executor::threads`] contiguous
    /// ranges whose interior boundaries are adjusted by `align`: each
    /// proposed boundary `p` is moved to `align(p)`, which must return a
    /// position in `p..=len` that is safe to cut at (for line-oriented
    /// byte input: the position just after the next `\n`). Degenerate
    /// (empty) ranges produced by colliding boundaries are dropped, so
    /// the result is a partition of `0..len` into non-empty ranges.
    ///
    /// Deterministic in `len`, the thread count and `align` — and for a
    /// single thread it returns the whole range, so chunked callers
    /// degrade to the plain sequential algorithm.
    pub fn chunk_ranges<B>(&self, len: usize, align: B) -> Vec<Range<usize>>
    where
        B: Fn(usize) -> usize,
    {
        let mut ranges = Vec::new();
        let mut start = 0usize;
        for r in self.part_ranges(len) {
            if r.end >= len {
                if start < len {
                    ranges.push(start..len);
                }
                break;
            }
            let end = align(r.end).min(len);
            debug_assert!(end >= r.end, "align must not move a boundary backwards");
            if end > start {
                ranges.push(start..end);
                start = end;
            }
            if start >= len {
                break;
            }
        }
        ranges
    }

    /// Fans `f` out over boundary-aligned chunks of `0..len` (see
    /// [`Executor::chunk_ranges`]), returning one result per chunk **in
    /// chunk order**. This is the byte-range fan-out primitive behind the
    /// streaming parsers: `align` keeps every chunk line-complete, each
    /// worker parses its chunk into a partial, and the caller merges the
    /// partials in chunk order.
    pub fn map_chunks<R, B, F>(&self, len: usize, align: B, f: F) -> Vec<R>
    where
        R: Send,
        B: Fn(usize) -> usize,
        F: Fn(Range<usize>) -> R + Sync,
    {
        Self::run_ranges(self.chunk_ranges(len, align), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [Executor; 3] {
        [
            Executor::sequential(),
            Executor::new(ExecutorKind::Rayon, 3),
            Executor::new(ExecutorKind::Rayon, 16),
        ]
    }

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!("seq".parse::<ExecutorKind>(), Ok(ExecutorKind::Sequential));
        assert_eq!("RAYON".parse::<ExecutorKind>(), Ok(ExecutorKind::Rayon));
        assert_eq!("par".parse::<ExecutorKind>(), Ok(ExecutorKind::Rayon));
        assert!("gpu".parse::<ExecutorKind>().is_err());
        assert_eq!(ExecutorKind::Sequential.to_string(), "sequential");
    }

    #[test]
    fn threads_are_effective() {
        assert_eq!(Executor::sequential().threads(), 1);
        assert_eq!(Executor::new(ExecutorKind::Rayon, 5).threads(), 5);
        assert!(Executor::rayon().threads() >= 1);
    }

    #[test]
    fn absurd_thread_requests_are_clamped() {
        let exec = Executor::new(ExecutorKind::Rayon, 1_000_000);
        assert_eq!(exec.threads(), MAX_THREADS);
        // And the fan-out still works at the cap.
        assert_eq!(exec.map_range(10, |i| i).len(), 10);
    }

    #[test]
    fn part_ranges_partition_the_input() {
        for exec in both() {
            for n in [0usize, 1, 2, 7, 100] {
                let ranges = exec.part_ranges(n);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "contiguous ascending");
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                assert_eq!(expect, n);
            }
        }
    }

    #[test]
    fn map_range_is_ordered_regardless_of_backend() {
        let expected: Vec<usize> = (0..101).map(|i| i * i).collect();
        for exec in both() {
            assert_eq!(exec.map_range(101, |i| i * i), expected);
        }
    }

    #[test]
    fn map_parts_merges_in_part_order() {
        for exec in both() {
            let parts = exec.map_parts(50, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_shards_runs_every_shard() {
        for exec in both() {
            assert_eq!(exec.map_shards(5, |s| s), vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn zero_items_is_fine() {
        for exec in both() {
            assert!(exec.map_parts(0, |_| 0u8).is_empty());
            assert!(exec.map_range(0, |_| 0u8).is_empty());
            assert!(exec.map_chunks(0, |p| p, |_| 0u8).is_empty());
        }
    }

    /// Boundary alignment for line-oriented bytes: cut just after the
    /// next newline at or past the proposed position.
    fn after_newline(data: &[u8]) -> impl Fn(usize) -> usize + '_ {
        move |p| {
            data[p..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|off| p + off + 1)
                .unwrap_or(data.len())
        }
    }

    #[test]
    fn chunk_ranges_partition_and_respect_boundaries() {
        let data = b"alpha\nbeta\ngamma\ndelta\nepsilon\nzeta\n";
        for exec in both() {
            let ranges = exec.chunk_ranges(data.len(), after_newline(data));
            let mut expect = 0;
            for r in &ranges {
                assert_eq!(r.start, expect, "contiguous ascending");
                assert!(!r.is_empty());
                // Every chunk ends just after a newline (or at EOF).
                assert!(r.end == data.len() || data[r.end - 1] == b'\n');
                expect = r.end;
            }
            assert_eq!(expect, data.len());
        }
    }

    #[test]
    fn chunk_ranges_collapse_when_one_line_dominates() {
        // A single long line: every boundary aligns to EOF, so exactly
        // one chunk covers everything regardless of the thread count.
        let data = vec![b'x'; 1000];
        for exec in both() {
            let ranges = exec.chunk_ranges(data.len(), after_newline(&data));
            assert_eq!(ranges, vec![0..data.len()]);
        }
    }

    #[test]
    fn map_chunks_merges_in_chunk_order() {
        let text: String = (0..200).map(|i| format!("line{i}\n")).collect();
        let data = text.as_bytes();
        let expected: Vec<&str> = text.lines().collect();
        for exec in both() {
            let parts = exec.map_chunks(data.len(), after_newline(data), |r| {
                std::str::from_utf8(&data[r])
                    .unwrap()
                    .lines()
                    .map(String::from)
                    .collect::<Vec<_>>()
            });
            let flat: Vec<String> = parts.into_iter().flatten().collect();
            assert_eq!(flat, expected);
        }
    }
}
