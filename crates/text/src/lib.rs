//! # minoan-text — schema-agnostic text processing for MinoanER
//!
//! Tokenization ([`Tokenizer`]), token n-grams ([`token_ngrams`]) for the
//! BSL baseline, a small stop-word list, and the tokenized view of a KB
//! pair ([`TokenizedPair`]) with shared dictionary and per-side entity
//! frequencies — the statistic behind the paper's `valueSim`.

#![warn(missing_docs)]

pub mod ngram;
pub mod stopwords;
pub mod tokenized;
pub mod tokenizer;

pub use ngram::{token_ngrams, token_ngrams_into};
pub use stopwords::{is_stopword, STOPWORDS};
pub use tokenized::{TokenDictionary, TokenizedPair};
pub use tokenizer::{Tokenizer, TokenizerOptions};
