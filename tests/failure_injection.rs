//! Failure-injection and edge-case tests: the pipeline must degrade
//! gracefully, never panic, on degenerate or corrupted inputs.

use minoaner::core::{build_blocks, MinoanConfig, MinoanEr};
use minoaner::kb::{parse, KbBuilder, KbPair};

#[test]
fn empty_kbs() {
    let pair = KbPair::new(KbBuilder::new("a").finish(), KbBuilder::new("b").finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert!(out.matching.is_empty());
}

#[test]
fn one_empty_side() {
    let mut a = KbBuilder::new("a");
    a.add_literal("a:1", "name", "something");
    let pair = KbPair::new(a.finish(), KbBuilder::new("b").finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert!(out.matching.is_empty());
}

#[test]
fn entities_without_literals() {
    let mut a = KbBuilder::new("a");
    a.add_uri("a:1", "knows", "a:2");
    a.declare_entity("a:2");
    let mut b = KbBuilder::new("b");
    b.add_uri("b:1", "knows", "b:2");
    b.declare_entity("b:2");
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    // Nothing to match on, but nothing crashes either.
    assert!(out.matching.is_empty());
}

#[test]
fn kb_without_relations_disables_neighbor_evidence_gracefully() {
    let mut a = KbBuilder::new("a");
    let mut b = KbBuilder::new("b");
    for i in 0..20 {
        a.add_literal(
            &format!("a:{i}"),
            "name",
            &format!("distinct name number {i}"),
        );
        b.add_literal(
            &format!("b:{i}"),
            "label",
            &format!("distinct name number {i}"),
        );
    }
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 20);
}

#[test]
fn self_loops_and_dangling_uris() {
    let mut a = KbBuilder::new("a");
    a.add_uri("a:1", "rel", "a:1"); // self-loop
    a.add_uri("a:1", "rel", "a:missing"); // dangling -> literal
    a.add_literal("a:1", "name", "weird entity");
    let mut b = KbBuilder::new("b");
    b.add_literal("b:1", "name", "weird entity");
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 1);
}

#[test]
fn unicode_and_long_values() {
    let mut a = KbBuilder::new("a");
    let long = "πολύ ".repeat(5000);
    a.add_literal("a:1", "name", &long);
    a.add_literal("a:1", "emoji", "🏛️ ruins");
    let mut b = KbBuilder::new("b");
    b.add_literal("b:1", "label", &long);
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 1);
}

#[test]
fn corrupted_ntriples_report_line_numbers() {
    let text = "<ok> <p> \"v\" .\nthis line is garbage\n";
    let err = parse::parse_ntriples("x", text).unwrap_err();
    assert_eq!(err.line, 2);
    assert!(!err.to_string().is_empty());
}

#[test]
fn duplicate_triples_are_harmless() {
    let mut a = KbBuilder::new("a");
    for _ in 0..10 {
        a.add_literal("a:1", "name", "same triple");
    }
    let mut b = KbBuilder::new("b");
    b.add_literal("b:1", "name", "same triple");
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 1);
}

#[test]
fn extreme_configs_do_not_panic() {
    let mut a = KbBuilder::new("a");
    let mut b = KbBuilder::new("b");
    for i in 0..30 {
        a.add_literal(
            &format!("a:{i}"),
            "name",
            &format!("entity {i} shared words"),
        );
        b.add_literal(
            &format!("b:{i}"),
            "name",
            &format!("entity {i} shared words"),
        );
    }
    let pair = KbPair::new(a.finish(), b.finish());
    for config in [
        MinoanConfig {
            candidates_k: 1,
            ..Default::default()
        },
        MinoanConfig {
            candidates_k: 10_000,
            ..Default::default()
        },
        MinoanConfig {
            theta: 0.001,
            ..Default::default()
        },
        MinoanConfig {
            theta: 0.999,
            ..Default::default()
        },
        MinoanConfig {
            top_relations_n: 100,
            name_attrs_k: 50,
            ..Default::default()
        },
    ] {
        let out = MinoanEr::new(config).unwrap().run(&pair);
        assert!(!out.matching.is_empty());
    }
}

#[test]
fn blocking_artifacts_are_consistent_under_no_purging() {
    let mut a = KbBuilder::new("a");
    let mut b = KbBuilder::new("b");
    for i in 0..50 {
        a.add_literal(&format!("a:{i}"), "name", &format!("stopword entity {i}"));
        b.add_literal(&format!("b:{i}"), "name", &format!("stopword entity {i}"));
    }
    let pair = KbPair::new(a.finish(), b.finish());
    let cfg = MinoanConfig {
        purge_blocks: false,
        ..Default::default()
    };
    let art = build_blocks(&pair, &cfg);
    assert!(art.purge.is_none());
    // "stopword" and "entity" blocks are 50x50 each.
    assert!(art.token_blocks.total_comparisons() >= 2 * 50 * 50);
}
