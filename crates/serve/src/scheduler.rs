//! The fleet scheduler: pair-level parallelism first, bounded-memory
//! admission, failure isolation.
//!
//! ## Scheduling policy
//!
//! - **Pairs first.** Up to `slots` jobs run concurrently, each on its
//!   own executor. The total thread budget is divided with real
//!   accounting: a claim takes `max(1, free / fill)` workers, where
//!   `free` is the budget minus the allotments of running jobs and
//!   `fill` the fleet slots left to take jobs — so allotments sum to
//!   the budget while the fleet is full, and as the queue drains the
//!   stragglers automatically widen to intra-pair parallelism (the last
//!   job alone gets every free thread). The one-thread floor means
//!   `slots > threads` oversubscribes by design — that configuration
//!   explicitly asks for more concurrent pairs than budget threads.
//! - **Bounded-memory admission.** Jobs are admitted strictly in
//!   manifest order. Before anything is loaded, a job's footprint is
//!   estimated ([`JobSpec::estimated_bytes`] — profile entity budgets
//!   for synthetic jobs, on-disk sizes for file jobs) and the job waits
//!   until the sum of in-flight estimates leaves room in the budget.
//!   The head job is always admitted when nothing is running, so a job
//!   bigger than the whole budget runs alone instead of deadlocking.
//! - **Failure isolation.** A job that fails to load, fails validation
//!   or panics produces a `Failed` report; the fleet keeps going. A
//!   [`CancelToken`] flips remaining undispatched jobs to `Cancelled`
//!   without interrupting jobs already running.
//! - **Determinism.** Job results never depend on scheduling: the
//!   pipeline is bit-identical across executors and thread counts, and
//!   each job's inputs are private to it. The fleet report lists jobs in
//!   manifest order regardless of completion order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use minoan_core::{MinoanConfig, MinoanEr};
use minoan_datagen::Dataset;
use minoan_eval::MatchQuality;
use minoan_exec::{Executor, ExecutorKind, MAX_THREADS};
use minoan_kb::{parse, GroundTruth, KbPair, Matching};

use crate::manifest::{JobInput, JobSpec, Manifest};
use crate::report::{peak_rss_bytes, JobReport, JobStatus, ServeReport};

/// Fleet-level options. `None` defers to the manifest; an explicit
/// value — including an explicit zero — overrides it, so an operator
/// can always lift a manifest limit from the command line.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Max concurrently running jobs (`Some(0)` = one per available
    /// core, clamped to the job count).
    pub slots: Option<usize>,
    /// Total worker-thread budget shared by running jobs (`Some(0)` =
    /// all available cores).
    pub threads: Option<usize>,
    /// Admission budget in MiB (`Some(0)` = unlimited).
    pub memory_budget_mib: Option<usize>,
    /// Executor backend every job runs on.
    pub executor: ExecutorKind,
    /// Matching defaults; per-job overrides apply on top.
    pub base: MinoanConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            slots: None,
            threads: None,
            memory_budget_mib: None,
            executor: ExecutorKind::Rayon,
            base: MinoanConfig::default(),
        }
    }
}

/// Cooperative cancellation: cancelling stops *dispatching* jobs (they
/// report `Cancelled`); jobs already running complete normally.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Admission-queue state shared by the worker threads.
struct QueueState {
    /// Index of the next undispatched job.
    next: usize,
    /// Sum of footprint estimates of running jobs.
    in_flight_bytes: u64,
    /// Currently running jobs.
    active: usize,
    /// High-water mark of `active`.
    peak_active: usize,
    /// Sum of thread allotments of running jobs.
    threads_in_use: usize,
}

/// Runs every job of `manifest` and returns the fleet report.
pub fn run_batch(manifest: &Manifest, opts: &ServeOptions) -> ServeReport {
    run_batch_streaming(manifest, opts, &CancelToken::new(), |_| {})
}

/// Like [`run_batch`], but streaming: `on_done` is invoked once per job
/// as it finishes (in completion order, possibly from multiple worker
/// threads), before the fleet report is assembled.
pub fn run_batch_streaming(
    manifest: &Manifest,
    opts: &ServeOptions,
    cancel: &CancelToken,
    on_done: impl Fn(&JobReport) + Sync,
) -> ServeReport {
    let t0 = Instant::now();
    let jobs = &manifest.jobs;
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let or_available = |v: usize| if v == 0 { available } else { v };
    let slots = or_available(opts.slots.unwrap_or(manifest.slots))
        .min(jobs.len().max(1))
        .min(MAX_THREADS);
    let threads = or_available(opts.threads.unwrap_or(manifest.threads)).min(MAX_THREADS);
    // Budget zero means unlimited (not "all available").
    let budget_mib = opts.memory_budget_mib.unwrap_or(manifest.memory_budget_mib);
    let budget_bytes = budget_mib as u64 * (1 << 20);
    let estimates: Vec<u64> = jobs.iter().map(JobSpec::estimated_bytes).collect();

    let state = Mutex::new(QueueState {
        next: 0,
        in_flight_bytes: 0,
        active: 0,
        peak_active: 0,
        threads_in_use: 0,
    });
    let admit = Condvar::new();
    let results: Mutex<Vec<Option<JobReport>>> = Mutex::new(jobs.iter().map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..slots {
            scope.spawn(|| {
                worker(
                    jobs,
                    &estimates,
                    opts,
                    slots,
                    threads,
                    budget_bytes,
                    cancel,
                    &state,
                    &admit,
                    &results,
                    &on_done,
                );
            });
        }
    });

    let jobs = results
        .into_inner()
        .expect("no worker panicked holding the results lock")
        .into_iter()
        .map(|r| r.expect("every job produced a report"))
        .collect();
    let peak_active = state.lock().expect("state lock").peak_active;
    ServeReport {
        jobs,
        slots,
        threads,
        memory_budget_bytes: budget_bytes,
        peak_concurrent_jobs: peak_active,
        wall: t0.elapsed(),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// One fleet worker: claim the head job once it is admitted, run it,
/// repeat until the queue is empty.
#[allow(clippy::too_many_arguments)]
fn worker(
    jobs: &[JobSpec],
    estimates: &[u64],
    opts: &ServeOptions,
    slots: usize,
    threads: usize,
    budget_bytes: u64,
    cancel: &CancelToken,
    state: &Mutex<QueueState>,
    admit: &Condvar,
    results: &Mutex<Vec<Option<JobReport>>>,
    on_done: &(impl Fn(&JobReport) + Sync),
) {
    loop {
        // Claim the next job under the admission rule.
        let (index, job_threads, cancelled) = {
            let mut guard = state.lock().expect("state lock");
            loop {
                if guard.next >= jobs.len() {
                    return;
                }
                let index = guard.next;
                if cancel.is_cancelled() {
                    guard.next += 1;
                    break (index, 0, true);
                }
                let est = estimates[index];
                let fits = budget_bytes == 0
                    || guard.active == 0
                    || guard.in_flight_bytes.saturating_add(est) <= budget_bytes;
                if fits {
                    // Straggler widening with real accounting: divide
                    // the threads not already allotted to running jobs
                    // across the fleet slots left to fill (this claim
                    // included), so allotments sum to `threads` while
                    // the fleet is full and the last jobs widen as the
                    // queue drains. The one-thread floor means a fleet
                    // wider than its thread budget (`slots > threads`)
                    // oversubscribes — that is the configuration asking
                    // for concurrency beyond the budget, not a leak.
                    let remaining = jobs.len() - index;
                    let fill = (slots - guard.active).min(remaining).max(1);
                    let free = threads.saturating_sub(guard.threads_in_use);
                    let allot = (free / fill).max(1);
                    guard.next += 1;
                    guard.active += 1;
                    guard.peak_active = guard.peak_active.max(guard.active);
                    guard.in_flight_bytes += est;
                    guard.threads_in_use += allot;
                    break (index, allot, false);
                }
                guard = admit.wait(guard).expect("admission wait");
            }
        };

        let report = if cancelled {
            let mut r = JobReport::empty(&jobs[index].name, JobStatus::Cancelled);
            r.estimated_bytes = estimates[index];
            r
        } else {
            let report = run_job(&jobs[index], opts, job_threads, estimates[index]);
            let mut guard = state.lock().expect("state lock");
            guard.active -= 1;
            guard.in_flight_bytes -= estimates[index];
            guard.threads_in_use -= job_threads;
            drop(guard);
            admit.notify_all();
            report
        };

        on_done(&report);
        results.lock().expect("results lock")[index] = Some(report);
    }
}

/// Runs one job start to finish, converting every failure mode — input
/// errors, config errors, panics — into a `Failed` report.
fn run_job(spec: &JobSpec, opts: &ServeOptions, threads: usize, estimated: u64) -> JobReport {
    let t0 = Instant::now();
    let exec = Executor::new(opts.executor, threads);
    let outcome =
        catch_unwind(AssertUnwindSafe(|| execute(spec, opts, &exec))).unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(format!("job panicked: {msg}"))
        });
    let mut report = match outcome {
        Ok(report) => report,
        Err(e) => JobReport::empty(&spec.name, JobStatus::Failed(e)),
    };
    report.wall = t0.elapsed();
    report.threads = exec.threads();
    report.estimated_bytes = estimated;
    report.peak_rss_bytes = peak_rss_bytes();
    report
}

/// Loads the job's inputs and resolves the pair on `exec`.
fn execute(spec: &JobSpec, opts: &ServeOptions, exec: &Executor) -> Result<JobReport, String> {
    let config = spec.config(&opts.base);
    let matcher = MinoanEr::new(config.clone()).map_err(|e| format!("bad config: {e}"))?;
    let (pair, truth) = load_input(spec, &config, exec)?;
    let out = matcher.run_with(&pair, exec);
    let quality = truth
        .as_ref()
        .map(|t| MatchQuality::evaluate(&out.matching, t));
    let matches = out
        .matching
        .iter()
        .map(|(a, b)| {
            (
                pair.first.entity_uri(a).to_string(),
                pair.second.entity_uri(b).to_string(),
            )
        })
        .collect();
    let mut report = JobReport::empty(&spec.name, JobStatus::Ok);
    report.matches = matches;
    report.h1_matches = out.report.h1_matches;
    report.h2_matches = out.report.h2_matches;
    report.h3_matches = out.report.h3_matches;
    report.h4_removed = out.report.h4_removed;
    report.quality = quality;
    report.timings = Some(out.report.timings);
    Ok(report)
}

/// Loads the KB pair (and ground truth, if any) for one job.
fn load_input(
    spec: &JobSpec,
    config: &MinoanConfig,
    exec: &Executor,
) -> Result<(KbPair, Option<GroundTruth>), String> {
    match &spec.input {
        JobInput::Synthetic { kind, seed, scale } => {
            let Dataset { pair, truth, .. } = kind.generate_scaled(*seed, *scale);
            Ok((pair, Some(truth)))
        }
        JobInput::Files { first, second } => {
            let pair = KbPair::new(
                load_kb_file(first, "E1", config, exec)?,
                load_kb_file(second, "E2", config, exec)?,
            );
            let truth = match &spec.truth {
                Some(path) => Some(load_truth_file(path, &pair)?),
                None => None,
            };
            Ok((pair, truth))
        }
    }
}

/// Streams one KB file through the chunked parallel parser, picking the
/// format by extension (`.nt`/`.ntriples`, case-insensitive, vs TSV).
/// The one KB-file loader in the workspace: the CLI's `match`/`stats`
/// paths wrap it, so a format or diagnostics fix lands everywhere.
pub fn load_kb_file(
    path: &std::path::Path,
    name: &str,
    config: &MinoanConfig,
    exec: &Executor,
) -> Result<minoan_kb::KnowledgeBase, String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let opts = config.stream_options();
    let is_nt = path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("nt") || e.eq_ignore_ascii_case("ntriples"));
    let result = if is_nt {
        parse::parse_ntriples_reader(name, file, exec, opts)
    } else {
        parse::parse_tsv_reader(name, file, exec, opts)
    };
    result.map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Loads a 2-column TSV of matching URIs. Lines naming URIs absent from
/// the pair are skipped (the truth may cover a superset of the slice
/// being resolved); malformed lines are errors. Shared with the CLI's
/// `--truth` flag.
pub fn load_truth_file(path: &std::path::Path, pair: &KbPair) -> Result<GroundTruth, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut truth = Matching::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.splitn(2, '\t');
        let (Some(u1), Some(u2)) = (cols.next(), cols.next()) else {
            return Err(format!(
                "{}:{}: expected two tab-separated URIs",
                path.display(),
                i + 1
            ));
        };
        if let (Some(e1), Some(e2)) = (pair.first.entity_by_uri(u1), pair.second.entity_by_uri(u2))
        {
            truth.insert(e1, e2);
        }
    }
    Ok(truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::JobInput;
    use minoan_datagen::DatasetKind;

    fn synthetic_job(name: &str, kind: DatasetKind, scale: f64) -> JobSpec {
        JobSpec {
            name: name.into(),
            input: JobInput::Synthetic {
                kind,
                seed: 20180416,
                scale,
            },
            truth: None,
            theta: None,
            candidates_k: None,
            purge_blocks: None,
        }
    }

    fn small_manifest() -> Manifest {
        Manifest {
            slots: 2,
            threads: 2,
            memory_budget_mib: 0,
            jobs: vec![
                synthetic_job("restaurant", DatasetKind::Restaurant, 0.05),
                synthetic_job("yago", DatasetKind::YagoImdb, 0.05),
                synthetic_job("restaurant-2", DatasetKind::Restaurant, 0.08),
            ],
        }
    }

    #[test]
    fn fleet_resolves_every_job() {
        let report = run_batch(&small_manifest(), &ServeOptions::default());
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.ok_count(), 3);
        for job in &report.jobs {
            assert!(job.status.is_ok(), "{}: {:?}", job.name, job.status);
            assert!(!job.matches.is_empty(), "{} found no matches", job.name);
            assert!(job.quality.is_some(), "synthetic jobs carry truth");
            // Allotments respect the fleet's thread budget.
            assert!(job.threads >= 1 && job.threads <= report.threads);
        }
        // Report order is manifest order, not completion order.
        let names: Vec<&str> = report.jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names, ["restaurant", "yago", "restaurant-2"]);
    }

    #[test]
    fn streaming_callback_sees_every_job() {
        let seen = Mutex::new(Vec::new());
        let report = run_batch_streaming(
            &small_manifest(),
            &ServeOptions::default(),
            &CancelToken::new(),
            |job| seen.lock().unwrap().push(job.name.clone()),
        );
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        let mut expect: Vec<String> = report.jobs.iter().map(|j| j.name.clone()).collect();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn tiny_budget_serializes_but_completes() {
        let manifest = Manifest {
            slots: 3,
            threads: 3,
            memory_budget_mib: 1,
            jobs: vec![
                synthetic_job("a", DatasetKind::Restaurant, 0.3),
                synthetic_job("b", DatasetKind::Restaurant, 0.3),
                synthetic_job("c", DatasetKind::Restaurant, 0.3),
            ],
        };
        // Every job estimates above the whole budget…
        for job in &manifest.jobs {
            assert!(job.estimated_bytes() > 1 << 20);
        }
        let report = run_batch(&manifest, &ServeOptions::default());
        // …so each runs alone (head-of-queue admission), and all finish.
        assert_eq!(
            report.ok_count(),
            3,
            "over-budget jobs run alone, not never"
        );
        assert_eq!(
            report.peak_concurrent_jobs, 1,
            "nothing fits next to an over-budget job"
        );
    }

    #[test]
    fn cancellation_skips_undispatched_jobs() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let report =
            run_batch_streaming(&small_manifest(), &ServeOptions::default(), &cancel, |_| {});
        assert_eq!(report.ok_count(), 0);
        assert!(report.jobs.iter().all(|j| j.status == JobStatus::Cancelled));
    }

    #[test]
    fn invalid_override_fails_alone() {
        let mut manifest = small_manifest();
        manifest.jobs[1].theta = Some(0.999999); // valid
        manifest.jobs[1].candidates_k = Some(usize::MAX); // absurd but valid
        let mut bad = synthetic_job("bad", DatasetKind::Restaurant, 0.05);
        // Bypass manifest validation to exercise the scheduler's own
        // config check: a hand-built spec with an out-of-range theta.
        bad.theta = Some(7.0);
        manifest.jobs.push(bad);
        let report = run_batch(&manifest, &ServeOptions::default());
        assert_eq!(report.ok_count(), 3);
        assert_eq!(report.failed_count(), 1);
        let failed = &report.jobs[3];
        assert!(matches!(&failed.status, JobStatus::Failed(e) if e.contains("theta")));
    }

    #[test]
    fn missing_file_fails_alone() {
        let mut manifest = small_manifest();
        manifest.jobs.push(JobSpec {
            name: "ghost".into(),
            input: JobInput::Files {
                first: "/no/such/file.tsv".into(),
                second: "/no/such/other.tsv".into(),
            },
            truth: None,
            theta: None,
            candidates_k: None,
            purge_blocks: None,
        });
        let report = run_batch(&manifest, &ServeOptions::default());
        assert_eq!(report.ok_count(), 3);
        let ghost = &report.jobs[3];
        assert!(matches!(&ghost.status, JobStatus::Failed(e) if e.contains("cannot read")));
    }

    #[test]
    fn results_do_not_depend_on_fleet_shape() {
        let manifest = small_manifest();
        let base: Vec<String> = run_batch(
            &manifest,
            &ServeOptions {
                slots: Some(1),
                threads: Some(1),
                executor: ExecutorKind::Sequential,
                ..ServeOptions::default()
            },
        )
        .jobs
        .iter()
        .map(|j| j.fingerprint())
        .collect();
        for (slots, threads) in [(2, 2), (3, 7)] {
            let got: Vec<String> = run_batch(
                &manifest,
                &ServeOptions {
                    slots: Some(slots),
                    threads: Some(threads),
                    ..ServeOptions::default()
                },
            )
            .jobs
            .iter()
            .map(|j| j.fingerprint())
            .collect();
            assert_eq!(base, got, "slots={slots} threads={threads}");
        }
    }

    #[test]
    fn straggler_gets_the_whole_budget() {
        // One job, many slots: the single job is the straggler and must
        // receive every thread in the budget.
        let manifest = Manifest {
            slots: 4,
            threads: 6,
            memory_budget_mib: 0,
            jobs: vec![synthetic_job("only", DatasetKind::Restaurant, 0.05)],
        };
        let report = run_batch(&manifest, &ServeOptions::default());
        assert_eq!(report.jobs[0].threads, 6);
    }
}
