//! End-to-end matching benchmarks (the machinery behind Table III):
//! the full MinoanER pipeline per dataset profile, plus a scale sweep
//! for the complexity claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minoan_core::MinoanEr;
use minoan_datagen::DatasetKind;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("minoaner_pipeline");
    group.sample_size(10);
    for kind in DatasetKind::ALL {
        let d = kind.generate_scaled(7, 0.1);
        group.bench_with_input(
            BenchmarkId::new("end_to_end", kind.name()),
            &d.pair,
            |b, pair| b.iter(|| MinoanEr::with_defaults().run(pair)),
        );
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("minoaner_scaling");
    group.sample_size(10);
    for scale in [5, 10, 20] {
        let d = DatasetKind::Restaurant.generate_scaled(7, scale as f64 / 100.0 * 2.0);
        group.bench_with_input(
            BenchmarkId::new("restaurant_scale_pct", scale * 2),
            &d.pair,
            |b, pair| b.iter(|| MinoanEr::with_defaults().run(pair)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_scaling);
criterion_main!(benches);
