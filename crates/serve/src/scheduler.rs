//! The fleet scheduler: a **live admission queue** with pair-level
//! parallelism first, bounded-memory admission, failure isolation and
//! cooperative mid-job cancellation.
//!
//! ## The queue
//!
//! [`JobQueue`] is the one scheduling engine in the workspace. Batch
//! mode ([`run_batch`]) submits every manifest job up front, closes the
//! queue and drains it; daemon mode ([`crate::daemon`]) keeps the queue
//! open and feeds it jobs as they arrive over the socket. Either way
//! the rules are identical:
//!
//! - **Pairs first.** Up to `min(slots, available_parallelism())`
//!   jobs run concurrently — the queue's **execution width** — each on
//!   its own executor; slots beyond the core count buy queue residency
//!   (admission accounting, a worker ready to claim, FIFO position)
//!   rather than one more CPU-bound pipeline evicting everyone else's
//!   working set on every timeslice. The total thread budget is
//!   divided with real accounting: a claim takes `max(1, free / fill)`
//!   workers, where `free` is the budget minus the allotments of
//!   running jobs and `fill` the width left to take jobs — so
//!   allotments sum to the budget while the fleet is full, and as the
//!   queue drains the stragglers automatically widen to intra-pair
//!   parallelism (the last job alone gets every free thread). On the
//!   default pool backend the allotment is a *partition hint*: wave
//!   work runs through the process-wide work-stealing pool sized to
//!   the core count (the submitter helping with its own wave), and
//!   idle capacity flows to whichever job has tasks pending. (On the
//!   rayon backend the allotment still spawns real scoped threads.)
//!   Manifest-derived `slots`/`threads` clamp to
//!   `available_parallelism()`; explicit CLI overrides are honored as
//!   written — they widen the queue, while the execution width keeps
//!   dispatch at what the machine can actually run.
//! - **Bounded-memory admission.** Jobs are admitted strictly in
//!   submission order. Before anything is loaded, a job's footprint is
//!   estimated ([`JobSpec::estimated_bytes`]) and the job waits until
//!   the sum of in-flight estimates leaves room in the budget. The head
//!   job is always admitted when nothing is running, so a job bigger
//!   than the whole budget runs alone instead of deadlocking.
//! - **Failure isolation.** A job that fails to load, fails validation
//!   or panics produces a `Failed` report; the fleet keeps going.
//! - **Cancellation.** Each job carries its own [`CancelToken`].
//!   Cancelling a *queued* job flips it to `Cancelled` **atomically**
//!   under the queue lock — the job either never dispatches, or it was
//!   already claimed and the token makes the running pipeline unwind at
//!   its next checkpoint (see [`MinoanEr::run_cancellable`]) to a
//!   `Cancelled` report — within one quantum-bounded pool task on the
//!   default backend, within one executor wave otherwise. A job is
//!   never observable as both running and cancelled: phase transitions
//!   (`Queued → Running → Done`, or `Queued → Done` for a pre-dispatch
//!   cancel) happen under one lock and anything else panics. The
//!   fleet-level token passed to [`run_batch_streaming`] keeps its
//!   coarser historical meaning: stop *dispatching* (queued jobs report
//!   `Cancelled`; running jobs complete normally).
//! - **Determinism.** Job results never depend on scheduling: the
//!   pipeline is bit-identical across executors and thread counts, and
//!   each job's inputs are private to it. The fleet report lists jobs
//!   in submission order regardless of completion order.
//!
//! ## Job lifecycle
//!
//! The supervised lifecycle, including the retry edge (attempts at a
//! job re-enter the queue; phases observable via [`JobPhase`], terminal
//! states via [`JobStatus`]):
//!
//! ```text
//!             ┌──────────────◄──────────────┐ retry: transient failure
//!             │                             │ (IO error, stall, timeout)
//!             ▼                             │ while attempt < max_retries,
//!   Queued ──────► Running ──────┬──────────┘ after exponential backoff
//!     │                          │            with deterministic jitter
//!     │                          ├─► Done(Ok)
//!     │                          ├─► Done(Failed)            permanent error,
//!     │                          │                           or retries exhausted
//!     │                          ├─► Done(Cancelled)         operator/client cancel
//!     │                          ├─► Done(TimedOut)          `timeout_ms` deadline
//!     │                          │                           expired at a checkpoint
//!     │                          ├─► Done(Poisoned)          second panic across
//!     │                          │                           attempts: quarantined
//!     │                          └─► Done(KilledOverBudget)  RSS watchdog: grew past
//!     │                                                      k × admission estimate
//!     └─────► Done(Cancelled)    pre-dispatch cancel
//! ```
//!
//! Failures classify as **transient** (IO errors — a missing or
//! unreadable file may appear on retry — fault-injected stalls, expired
//! deadlines) or **permanent** (parse errors, bad config: the same
//! input fails the same way every time). Only transient failures and
//! first panics consume retry budget; `max_retries` defaults to `0`, so
//! without an explicit opt-in every job gets exactly one attempt and
//! the bit-identity gates observe the historical behavior unchanged.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use minoan_core::{MinoanConfig, MinoanEr, Timings};
use minoan_datagen::Dataset;
use minoan_eval::MatchQuality;
use minoan_exec::{Executor, ExecutorKind, PoolStats, MAX_THREADS};
use minoan_kb::{parse, GroundTruth, Json, KbPair, Matching};
use minoan_obs::{trace, Level};

use crate::manifest::{JobInput, JobSpec, Manifest};
use crate::report::{current_rss_bytes, peak_rss_bytes, JobReport, JobStatus, ServeReport};

pub use minoan_exec::{CancelToken, Cancelled};

/// Fleet-level options. `None` defers to the manifest; an explicit
/// value — including an explicit zero — overrides it, so an operator
/// can always lift a manifest limit from the command line.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Max concurrently running jobs (`Some(0)` = one per available
    /// core, clamped to the job count in batch mode).
    pub slots: Option<usize>,
    /// Total worker-thread budget shared by running jobs (`Some(0)` =
    /// all available cores).
    pub threads: Option<usize>,
    /// Admission budget in MiB (`Some(0)` = unlimited).
    pub memory_budget_mib: Option<usize>,
    /// Executor backend every job runs on.
    pub executor: ExecutorKind,
    /// Matching defaults; per-job overrides apply on top.
    pub base: MinoanConfig,
    /// Fleet default per-job deadline in ms (`Some(0)` = explicitly no
    /// deadline; `None` defers to the manifest's `timeout_ms`).
    pub timeout_ms: Option<u64>,
    /// Fleet default transient-failure retry budget (`None` defers to
    /// the manifest's `max_retries`, itself defaulting to `0`).
    pub max_retries: Option<u32>,
    /// RSS watchdog: kill a job whose measured RSS growth exceeds this
    /// factor times its admission estimate (`None` = watchdog off, the
    /// default — process-wide RSS attribution is too coarse to arm
    /// unconditionally).
    pub rss_kill_factor: Option<f64>,
    /// Overload shedding high-water mark on queue depth for daemon
    /// intake (`None` = the [`DEFAULT_SHED_QUEUE_DEPTH`] default,
    /// `Some(0)` = never shed on depth). Batch mode never sheds: a
    /// manifest is admitted whole.
    pub shed_queue_depth: Option<usize>,
    /// Directory where `POST /v1/indexes` builds persist their index
    /// artifacts and where match queries load them from (`None` =
    /// index endpoints are disabled and report `unavailable`).
    pub index_dir: Option<std::path::PathBuf>,
    /// Byte budget for the in-memory cache of loaded index artifacts
    /// (`None` = [`crate::registry::DEFAULT_CACHE_BYTES`]; `Some(0)` =
    /// evict after every query).
    pub index_cache_bytes: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            slots: None,
            threads: None,
            memory_budget_mib: None,
            executor: ExecutorKind::Pool,
            base: MinoanConfig::default(),
            timeout_ms: None,
            max_retries: None,
            rss_kill_factor: None,
            shed_queue_depth: None,
            index_dir: None,
            index_cache_bytes: None,
        }
    }
}

/// Identifier of a job within one [`JobQueue`] lifetime: its submission
/// index, which is also its position in the final report.
pub type JobId = usize;

/// Observable lifecycle phase of a job in a [`JobQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Submitted, not yet dispatched to a fleet slot.
    Queued,
    /// Claimed by a fleet slot; its pipeline is running.
    Running,
    /// Terminal: a report exists (ok, failed or cancelled).
    Done,
}

impl JobPhase {
    /// Lower-case label (`queued` / `running` / `done`).
    pub fn label(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
        }
    }
}

/// What a [`JobQueue::cancel`] request found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued: it was flipped to a `Cancelled` report
    /// atomically and will never dispatch.
    CancelledQueued,
    /// The job was running: its token is set and the pipeline unwinds
    /// to a `Cancelled` report at its next cooperative checkpoint.
    Cancelling,
    /// The job had already finished; its report is unchanged.
    AlreadyDone,
    /// No job with that id was ever submitted.
    Unknown,
}

impl CancelOutcome {
    /// Lower-case wire label.
    pub fn label(self) -> &'static str {
        match self {
            CancelOutcome::CancelledQueued => "cancelled",
            CancelOutcome::Cancelling => "cancelling",
            CancelOutcome::AlreadyDone => "done",
            CancelOutcome::Unknown => "unknown",
        }
    }
}

/// Live scheduling telemetry: a point-in-time aggregate over the whole
/// queue, cheap enough to compute on every status request or metrics
/// scrape. The scheduler always tracked these internally (admission
/// accounting, thread allotments, high-water marks); this is the view
/// that lets clients see them — the line-JSON `status` response embeds
/// it as `telemetry`, and `GET /v1/metrics` renders it as Prometheus
/// gauges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueStats {
    /// Jobs awaiting dispatch.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Terminal jobs that resolved successfully.
    pub done_ok: usize,
    /// Terminal jobs that failed.
    pub done_failed: usize,
    /// Terminal jobs that were cancelled.
    pub done_cancelled: usize,
    /// Terminal jobs whose deadline expired.
    pub done_timed_out: usize,
    /// Terminal jobs quarantined after repeated panics.
    pub done_poisoned: usize,
    /// Terminal jobs killed by the RSS watchdog.
    pub done_killed_over_budget: usize,
    /// Retry attempts the supervisor has re-queued (cumulative).
    pub retries_scheduled: u64,
    /// Submissions rejected by overload shedding (cumulative).
    pub shed_total: u64,
    /// Sum of footprint estimates of the jobs admitted right now — what
    /// the bounded-memory admission is charging against the budget.
    pub admitted_bytes: u64,
    /// The admission budget in bytes (`0` = unlimited).
    pub memory_budget_bytes: u64,
    /// Worker threads currently allotted to running jobs.
    pub threads_in_use: usize,
    /// Total worker-thread budget.
    pub threads_budget: usize,
    /// Fleet slots (max concurrent jobs).
    pub slots: usize,
    /// High-water mark of concurrently running jobs.
    pub peak_running: usize,
    /// Cumulative per-stage pipeline timings over every finished job.
    pub stage_totals: Timings,
    /// Cumulative wall-clock time over every finished job (includes
    /// input loading, unlike [`QueueStats::stage_totals`]).
    pub wall_total: Duration,
    /// Sum of admission estimates of finished jobs.
    pub estimated_bytes_total: u64,
    /// Sum of measured peak-RSS deltas of finished jobs (see
    /// [`JobReport::peak_rss_delta_bytes`] for what a delta attributes).
    pub rss_delta_bytes_total: u64,
    /// Work-stealing pool telemetry (worker count, queued-task depth,
    /// steal and per-worker task counters). `None` until the first
    /// pool-backed wave starts the process-wide pool — taking a
    /// snapshot never starts it.
    pub pool: Option<PoolStats>,
}

impl QueueStats {
    /// Total terminal jobs across every terminal state.
    pub fn done(&self) -> usize {
        self.done_ok
            + self.done_failed
            + self.done_cancelled
            + self.done_timed_out
            + self.done_poisoned
            + self.done_killed_over_budget
    }

    /// The telemetry as a flat JSON object — the `telemetry` member of
    /// the line-JSON `status` response (durations in milliseconds).
    /// The `pool` member is the work-stealing pool's counters, or
    /// `null` while the pool has not started.
    pub fn to_json(&self) -> Json {
        let ms = |d: Duration| Json::Num(d.as_secs_f64() * 1e3);
        let pool = match &self.pool {
            None => Json::Null,
            Some(p) => Json::obj([
                ("workers", Json::num(p.workers as f64)),
                ("queued_tasks", Json::num(p.queued as f64)),
                ("steals", Json::num(p.steals as f64)),
                ("injected", Json::num(p.injected as f64)),
                ("tasks_total", Json::num(p.tasks_total() as f64)),
                (
                    "worker_tasks",
                    Json::arr(p.worker_tasks.iter().map(|&t| Json::num(t as f64))),
                ),
            ]),
        };
        Json::obj([
            ("queued", Json::num(self.queued as f64)),
            ("running", Json::num(self.running as f64)),
            ("done_ok", Json::num(self.done_ok as f64)),
            ("done_failed", Json::num(self.done_failed as f64)),
            ("done_cancelled", Json::num(self.done_cancelled as f64)),
            ("done_timed_out", Json::num(self.done_timed_out as f64)),
            ("done_poisoned", Json::num(self.done_poisoned as f64)),
            (
                "done_killed_over_budget",
                Json::num(self.done_killed_over_budget as f64),
            ),
            (
                "retries_scheduled",
                Json::num(self.retries_scheduled as f64),
            ),
            ("shed_total", Json::num(self.shed_total as f64)),
            ("admitted_bytes", Json::num(self.admitted_bytes as f64)),
            (
                "memory_budget_bytes",
                Json::num(self.memory_budget_bytes as f64),
            ),
            ("threads_in_use", Json::num(self.threads_in_use as f64)),
            ("threads_budget", Json::num(self.threads_budget as f64)),
            ("slots", Json::num(self.slots as f64)),
            ("peak_running", Json::num(self.peak_running as f64)),
            (
                "estimated_bytes_total",
                Json::num(self.estimated_bytes_total as f64),
            ),
            (
                "rss_delta_bytes_total",
                Json::num(self.rss_delta_bytes_total as f64),
            ),
            (
                "stage_ms",
                Json::obj([
                    ("tokenize", ms(self.stage_totals.tokenize)),
                    ("names_h1", ms(self.stage_totals.names_h1)),
                    ("blocking", ms(self.stage_totals.blocking)),
                    ("similarities", ms(self.stage_totals.similarities)),
                    ("matching", ms(self.stage_totals.matching)),
                ]),
            ),
            ("wall_ms_total", ms(self.wall_total)),
            ("pool", pool),
        ])
    }
}

/// Point-in-time view of one queue entry, for status reporting.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Submission index.
    pub id: JobId,
    /// Job name (not necessarily unique across a daemon's lifetime).
    pub name: String,
    /// Current phase.
    pub phase: JobPhase,
    /// Terminal status, present exactly when `phase == Done`. The
    /// phase/status split is what makes "running **and** cancelled"
    /// unrepresentable in a snapshot.
    pub status: Option<JobStatus>,
}

/// One queue entry and its lifecycle state.
struct JobEntry {
    spec: JobSpec,
    /// The calibrated footprint estimate charged against the admission
    /// budget (raw × the profile's learned accuracy factor).
    estimate: u64,
    /// The uncalibrated [`JobSpec::estimated_bytes`] — the denominator
    /// calibration observations are measured against, so learned
    /// factors never compound on themselves.
    raw_estimate: u64,
    cancel: CancelToken,
    phase: Phase,
    /// Resolved run deadline (per-job `timeout_ms` over the fleet
    /// default; `None` = no deadline). Armed on the token at dispatch,
    /// re-armed fresh on every retry attempt.
    timeout: Option<Duration>,
    /// Resolved transient-failure retry budget.
    max_retries: u32,
    /// Completed attempts beyond the first (0 on the first run).
    attempt: u32,
    /// Attempts that ended in a panic; [`POISON_PANICS`] quarantines.
    panics: u32,
    /// Backoff gate: a re-queued retry is not dispatched before this.
    not_before: Option<Instant>,
    /// When the job (re-)entered the pending queue; dispatch observes
    /// the queue-wait histogram against it (backoff delay included).
    queued_at: Instant,
    /// The process-unique trace ID of each dispatched attempt, in
    /// attempt order — the key into the trace ring for
    /// `GET /v1/jobs/{id}/trace`. Fresh per attempt, so a retried
    /// job's span trees never interleave.
    trace_ids: Vec<u64>,
}

/// Internal phase storage; `Done` owns the report (boxed: terminal
/// reports dwarf the other variants).
enum Phase {
    Queued,
    Running,
    Done(Box<JobReport>),
}

impl Phase {
    fn observable(&self) -> JobPhase {
        match self {
            Phase::Queued => JobPhase::Queued,
            Phase::Running => JobPhase::Running,
            Phase::Done(_) => JobPhase::Done,
        }
    }
}

/// State behind the queue lock.
struct QueueInner {
    /// Every job ever submitted, indexed by [`JobId`].
    entries: Vec<JobEntry>,
    /// Ids still awaiting dispatch, in strict submission order.
    pending: VecDeque<JobId>,
    /// Sum of footprint estimates of running jobs.
    in_flight_bytes: u64,
    /// Currently running jobs.
    active: usize,
    /// High-water mark of `active`.
    peak_active: usize,
    /// Sum of thread allotments of running jobs.
    threads_in_use: usize,
    /// No further submissions; workers exit once drained.
    closed: bool,
    /// Cumulative retry attempts re-queued by the supervisor.
    retries_scheduled: u64,
    /// Cumulative submissions rejected by overload shedding.
    shed_total: u64,
}

impl QueueInner {
    /// The single place job phases change. Legal transitions are
    /// `Queued → Running` (dispatch), `Queued → Done` (pre-dispatch
    /// cancel), `Running → Done` (completion) and `Running → Queued`
    /// (transient-failure retry re-entering the queue); anything else
    /// is a scheduler bug and panics rather than producing a report
    /// that contradicts the phase history.
    fn transition(&mut self, id: JobId, to: Phase) {
        let entry = &mut self.entries[id];
        let ok = matches!(
            (&entry.phase, &to),
            (Phase::Queued, Phase::Running)
                | (Phase::Queued, Phase::Done(_))
                | (Phase::Running, Phase::Done(_))
                | (Phase::Running, Phase::Queued)
        );
        assert!(
            ok,
            "invalid transition for job #{id}: {:?} -> {:?}",
            entry.phase.observable(),
            to.observable()
        );
        entry.phase = to;
    }

    /// Flips a still-queued job to its terminal `Cancelled` report:
    /// removes it from pending and transitions it to `Done`, returning
    /// the report. The one implementation behind both the per-job
    /// cancel and the fleet-level-cancel dispatch skip, so the shape of
    /// a cancelled report cannot drift between the two paths. Callers
    /// notify the condvars after releasing the lock.
    fn flip_queued_to_cancelled(&mut self, id: JobId) -> JobReport {
        let entry = &self.entries[id];
        let mut report = JobReport::empty(&entry.spec.name, JobStatus::Cancelled);
        report.estimated_bytes = entry.estimate;
        self.pending.retain(|&p| p != id);
        self.transition(id, Phase::Done(Box::new(report.clone())));
        trace::emit_job(
            Level::Info,
            "job.done",
            id as i64,
            0,
            "status=cancelled (pre-dispatch)".to_string(),
        );
        report
    }
}

/// The claim a worker leaves the admission loop with.
enum Claim {
    /// Run this job with the given thread allotment.
    Run { id: JobId, allot: usize },
    /// The job was flipped to `Cancelled` pre-dispatch (fleet-level
    /// cancel); the stored report's clone still goes to `on_done`,
    /// which also wants the spec it belonged to.
    Flipped {
        spec: Box<JobSpec>,
        report: Box<JobReport>,
    },
    /// Queue closed and drained: the worker exits.
    Exit,
}

/// A live, bounded-memory admission queue of resolution jobs — the
/// scheduling engine shared by batch mode and the daemon. See the
/// module docs for the scheduling policy.
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    /// Wakes workers: new pending work, freed budget, or close().
    admit: Condvar,
    /// Wakes [`JobQueue::wait`]ers on any completion.
    done: Condvar,
    slots: usize,
    /// Execution width: at most this many jobs are *dispatched* at
    /// once — `min(slots, available_parallelism())`. Slots beyond the
    /// core count still buy queue residency (admission accounting,
    /// worker threads ready to claim, FIFO position) but never put more
    /// CPU-bound pipelines on the machine than it has cores: on a small
    /// box, excess concurrency only evicts each job's working set on
    /// every timeslice without adding parallelism.
    width: usize,
    threads: usize,
    budget_bytes: u64,
    /// Fleet default per-job deadline in ms (`0` = none); per-job
    /// `timeout_ms` overrides.
    default_timeout_ms: u64,
    /// Fleet default retry budget; per-job `max_retries` overrides.
    default_max_retries: u32,
    /// Shedding high-water mark on pending depth (`0` = off).
    shed_max_queued: usize,
    /// Shedding high-water mark on admitted + pending estimate bytes
    /// (`0` = off).
    shed_max_bytes: u64,
    /// Self-calibrating admission: per-profile running ratio of measured
    /// `peak_rss_delta_bytes` to the raw footprint estimate, learned
    /// from finished jobs (EWMA) and applied — clamped — to future
    /// submissions of the same profile. Separate from the queue lock:
    /// calibration reads/writes never contend with dispatch.
    calibration: Mutex<HashMap<&'static str, f64>>,
}

/// Default overload-shedding high-water mark on queue depth for daemon
/// intake: submissions beyond this many pending jobs are rejected as
/// retryable so clients back off instead of piling on. Batch manifests
/// are exempt (admitted whole); `ServeOptions::shed_queue_depth`
/// overrides, `0` disabling depth shedding entirely.
pub const DEFAULT_SHED_QUEUE_DEPTH: usize = 256;

/// Admitted-bytes shedding: with a memory budget configured, intake
/// sheds once `admitted + pending` estimates exceed this factor times
/// the budget — queueing more than a few budgets' worth of work only
/// buys latency, never throughput.
pub const SHED_BYTES_FACTOR: u64 = 4;

/// A job whose attempts panic this many times is quarantined as
/// [`JobStatus::Poisoned`] regardless of remaining retry budget.
pub const POISON_PANICS: u32 = 2;

/// First retry waits this long (doubling per attempt, jittered).
pub const RETRY_BACKOFF_BASE: Duration = Duration::from_millis(50);

/// Retry backoff delays cap here.
pub const RETRY_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// RSS watchdog sampling interval.
const WATCHDOG_INTERVAL: Duration = Duration::from_millis(10);

/// Why [`JobQueue::submit`] refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is closed to new submissions (shutdown in progress).
    /// Not retryable: the daemon is going away.
    Closed,
    /// Load shedding: a high-water mark (queue depth or admitted-bytes)
    /// is crossed. Retryable — the client should back off and resubmit.
    Overloaded(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => f.write_str("queue is closed to new submissions"),
            SubmitError::Overloaded(detail) => write!(f, "overloaded: {detail}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// EWMA weight of the newest estimate-accuracy observation.
const CALIBRATION_ALPHA: f64 = 0.5;
/// Clamp on the applied calibration factor, so one wild measurement
/// (or an RSS high-water plateau) cannot collapse or explode admission.
const CALIBRATION_FACTOR_RANGE: (f64, f64) = (0.25, 8.0);

impl JobQueue {
    /// A queue with **resolved** knobs: `slots` workers, a total budget
    /// of `threads` worker threads, `budget_bytes` admission budget
    /// (`0` = unlimited). Execution width is additionally capped at
    /// `available_parallelism()` — see [`JobQueue::width`].
    pub fn new(slots: usize, threads: usize, budget_bytes: u64) -> JobQueue {
        let slots = slots.max(1);
        JobQueue {
            inner: Mutex::new(QueueInner {
                entries: Vec::new(),
                pending: VecDeque::new(),
                in_flight_bytes: 0,
                active: 0,
                peak_active: 0,
                threads_in_use: 0,
                closed: false,
                retries_scheduled: 0,
                shed_total: 0,
            }),
            admit: Condvar::new(),
            done: Condvar::new(),
            slots,
            width: slots.min(
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            ),
            threads: threads.max(1),
            budget_bytes,
            default_timeout_ms: 0,
            default_max_retries: 0,
            shed_max_queued: 0,
            shed_max_bytes: 0,
            calibration: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the fleet-level lifecycle defaults new submissions resolve
    /// against: per-job deadline (`0` = none) and transient-failure
    /// retry budget. Builder-style; call before sharing the queue.
    pub fn with_job_defaults(mut self, timeout_ms: u64, max_retries: u32) -> JobQueue {
        self.default_timeout_ms = timeout_ms;
        self.default_max_retries = max_retries;
        self
    }

    /// Arms overload shedding: [`JobQueue::submit`] rejects with
    /// [`SubmitError::Overloaded`] once `max_queued` jobs are pending
    /// (`0` = no depth limit) or admitted + pending estimates exceed
    /// `max_bytes` (`0` = no byte limit). Builder-style; the daemon
    /// arms this, batch mode does not.
    pub fn with_shed_limits(mut self, max_queued: usize, max_bytes: u64) -> JobQueue {
        self.shed_max_queued = max_queued;
        self.shed_max_bytes = max_bytes;
        self
    }

    /// Fleet slots (concurrent jobs) this queue schedules for.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Execution width: the most jobs this queue will ever dispatch
    /// concurrently, `min(slots, available_parallelism())`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Admission budget in bytes (`0` = unlimited).
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// The learned estimate-accuracy ratio for a calibration bucket
    /// (see [`JobSpec::profile_key`]), or `None` before any job of that
    /// profile finished with a usable measurement.
    pub fn calibration_ratio(&self, profile: &str) -> Option<f64> {
        self.calibration
            .lock()
            .expect("calibration lock")
            .get(profile)
            .copied()
    }

    /// Applies the profile's learned ratio (clamped to
    /// [`CALIBRATION_FACTOR_RANGE`]) to a raw footprint estimate. An
    /// unseen profile charges the raw estimate unchanged.
    fn calibrated_estimate(&self, spec: &JobSpec, raw: u64) -> u64 {
        let Some(ratio) = self.calibration_ratio(spec.profile_key()) else {
            return raw;
        };
        let (lo, hi) = CALIBRATION_FACTOR_RANGE;
        (raw as f64 * ratio.clamp(lo, hi)).round() as u64
    }

    /// Feeds one finished job's measured `peak_rss_delta_bytes` back
    /// into the profile's running ratio. Skipped when either side of
    /// the ratio is zero: a zero raw estimate carries no signal, and a
    /// zero delta usually means the process high-water mark was already
    /// above this job's footprint (VmHWM never decreases), not that the
    /// job was free.
    fn observe_calibration(&self, profile: &'static str, raw: u64, delta: u64) {
        if raw == 0 || delta == 0 {
            return;
        }
        let observed = delta as f64 / raw as f64;
        let mut map = self.calibration.lock().expect("calibration lock");
        let ratio = map.entry(profile).or_insert(observed);
        *ratio = (1.0 - CALIBRATION_ALPHA) * *ratio + CALIBRATION_ALPHA * observed;
    }

    /// Submits a job, returning its id (= submission index). Fails with
    /// [`SubmitError::Closed`] once the queue is
    /// [closed](JobQueue::close), and — when [shedding is
    /// armed](JobQueue::with_shed_limits) — with the retryable
    /// [`SubmitError::Overloaded`] when a high-water mark is crossed.
    /// The footprint estimate is taken now, before any input is loaded;
    /// the job's deadline and retry budget resolve against the fleet
    /// defaults now too.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let raw_estimate = spec.estimated_bytes();
        let estimate = self.calibrated_estimate(&spec, raw_estimate);
        let timeout_ms = spec.timeout_ms.unwrap_or(self.default_timeout_ms);
        let timeout = (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms));
        let max_retries = spec.max_retries.unwrap_or(self.default_max_retries);
        let mut guard = self.lock();
        if guard.closed {
            return Err(SubmitError::Closed);
        }
        if self.shed_max_queued > 0 && guard.pending.len() >= self.shed_max_queued {
            guard.shed_total += 1;
            let detail = format!(
                "{} jobs pending (high-water mark {})",
                guard.pending.len(),
                self.shed_max_queued
            );
            drop(guard);
            trace::emit_job(Level::Warn, "job.shed", -1, 0, detail.clone());
            return Err(SubmitError::Overloaded(detail));
        }
        if self.shed_max_bytes > 0 {
            let pending_bytes: u64 = guard
                .pending
                .iter()
                .map(|&p| guard.entries[p].estimate)
                .sum();
            let charged = guard
                .in_flight_bytes
                .saturating_add(pending_bytes)
                .saturating_add(estimate);
            if charged > self.shed_max_bytes {
                guard.shed_total += 1;
                let detail = format!(
                    "{charged} estimated bytes admitted or pending \
                     (high-water mark {})",
                    self.shed_max_bytes
                );
                drop(guard);
                trace::emit_job(Level::Warn, "job.shed", -1, 0, detail.clone());
                return Err(SubmitError::Overloaded(detail));
            }
        }
        let id = guard.entries.len();
        let name = spec.name.clone();
        guard.entries.push(JobEntry {
            spec,
            estimate,
            raw_estimate,
            cancel: CancelToken::new(),
            phase: Phase::Queued,
            timeout,
            max_retries,
            attempt: 0,
            panics: 0,
            not_before: None,
            queued_at: Instant::now(),
            trace_ids: Vec::new(),
        });
        guard.pending.push_back(id);
        drop(guard);
        trace::emit_job(
            Level::Info,
            "job.queued",
            id as i64,
            0,
            format!("name={name:?} estimate_bytes={estimate}"),
        );
        self.admit.notify_all();
        Ok(id)
    }

    /// Cancels a job. The queued-or-running decision and the resulting
    /// state change happen atomically under the queue lock, so a cancel
    /// racing dispatch resolves to exactly one of the two outcomes —
    /// never a job that is both running and cancelled.
    pub fn cancel(&self, id: JobId) -> CancelOutcome {
        let mut guard = self.lock();
        let Some(phase) = guard.entries.get(id).map(|e| e.phase.observable()) else {
            return CancelOutcome::Unknown;
        };
        match phase {
            JobPhase::Queued => {
                guard.flip_queued_to_cancelled(id);
                drop(guard);
                // The head of the queue changed; a worker blocked on
                // admission for this job must re-evaluate.
                self.admit.notify_all();
                self.done.notify_all();
                CancelOutcome::CancelledQueued
            }
            JobPhase::Running => {
                guard.entries[id].cancel.cancel();
                CancelOutcome::Cancelling
            }
            JobPhase::Done => CancelOutcome::AlreadyDone,
        }
    }

    /// Requests cancellation of **every** job: queued jobs flip to
    /// `Cancelled` reports, running jobs get their tokens set. Used by
    /// the daemon's immediate-shutdown path.
    pub fn cancel_all(&self) {
        let ids: Vec<JobId> = (0..self.lock().entries.len()).collect();
        for id in ids {
            self.cancel(id);
        }
    }

    /// Closes the queue: no further submissions; workers exit once the
    /// pending queue drains.
    pub fn close(&self) {
        self.lock().closed = true;
        self.admit.notify_all();
    }

    /// Snapshot of every submitted job, in submission order.
    pub fn snapshot(&self) -> Vec<JobSnapshot> {
        Self::snapshot_of(&self.lock())
    }

    /// Snapshot of one job (`None` for an unknown id) — avoids cloning
    /// every entry when a status request names a single job.
    pub fn job_snapshot(&self, id: JobId) -> Option<JobSnapshot> {
        let guard = self.lock();
        guard.entries.get(id).map(|e| Self::snapshot_entry(id, e))
    }

    /// Snapshot and telemetry from **one** lock acquisition, so the
    /// counts can never contradict the job list they accompany (a job
    /// finishing between two separate calls would).
    pub fn snapshot_and_stats(&self) -> (Vec<JobSnapshot>, QueueStats) {
        let guard = self.lock();
        (Self::snapshot_of(&guard), self.stats_of(&guard))
    }

    fn snapshot_of(guard: &QueueInner) -> Vec<JobSnapshot> {
        guard
            .entries
            .iter()
            .enumerate()
            .map(|(id, e)| Self::snapshot_entry(id, e))
            .collect()
    }

    fn snapshot_entry(id: JobId, e: &JobEntry) -> JobSnapshot {
        JobSnapshot {
            id,
            name: e.spec.name.clone(),
            phase: e.phase.observable(),
            status: match &e.phase {
                Phase::Done(r) => Some(r.status.clone()),
                _ => None,
            },
        }
    }

    /// Blocks until job `id` reaches a terminal report and returns a
    /// clone of it (`None` for an unknown id). Jobs always terminate —
    /// queued work is either dispatched or flipped to `Cancelled` — so
    /// this cannot wait forever once workers are running.
    pub fn wait(&self, id: JobId) -> Option<JobReport> {
        let mut guard = self.lock();
        loop {
            match guard.entries.get(id) {
                None => return None,
                Some(JobEntry {
                    phase: Phase::Done(report),
                    ..
                }) => return Some((**report).clone()),
                Some(_) => guard = self.done.wait(guard).expect("queue lock"),
            }
        }
    }

    /// Highest number of jobs observed running at once.
    pub fn peak_concurrent(&self) -> usize {
        self.lock().peak_active
    }

    /// The trace IDs of a job's dispatched attempts, in attempt order
    /// (`None` for an unknown id; empty before the first dispatch).
    /// Keys into the trace ring for the span-tree endpoints, and what
    /// the chaos suite asserts are pairwise distinct across retries.
    pub fn trace_ids(&self, id: JobId) -> Option<Vec<u64>> {
        self.lock().entries.get(id).map(|e| e.trace_ids.clone())
    }

    /// Live scheduling telemetry: phase counts, admitted footprint vs.
    /// budget, thread allotments and cumulative per-stage timings over
    /// finished jobs — one lock acquisition, one pass over the entries.
    pub fn stats(&self) -> QueueStats {
        self.stats_of(&self.lock())
    }

    /// Whether a patch for index `index_id` is queued or running. The
    /// daemon's 409-conflict check: two concurrent patches against the
    /// same artifact would race on the file, so the second is refused
    /// at intake until the first reaches a terminal phase.
    pub fn patch_in_flight(&self, index_id: &str) -> bool {
        let guard = self.lock();
        guard.entries.iter().any(|e| {
            !matches!(e.phase, Phase::Done(_))
                && matches!(&e.spec.input, JobInput::IndexPatch { id, .. } if id == index_id)
        })
    }

    fn stats_of(&self, guard: &QueueInner) -> QueueStats {
        let mut stats = QueueStats {
            admitted_bytes: guard.in_flight_bytes,
            memory_budget_bytes: self.budget_bytes,
            threads_in_use: guard.threads_in_use,
            threads_budget: self.threads,
            slots: self.slots,
            peak_running: guard.peak_active,
            retries_scheduled: guard.retries_scheduled,
            shed_total: guard.shed_total,
            pool: minoan_exec::pool::try_stats(),
            ..QueueStats::default()
        };
        for entry in &guard.entries {
            match &entry.phase {
                Phase::Queued => stats.queued += 1,
                Phase::Running => stats.running += 1,
                Phase::Done(report) => {
                    match &report.status {
                        JobStatus::Ok => stats.done_ok += 1,
                        JobStatus::Failed(_) => stats.done_failed += 1,
                        JobStatus::Cancelled => stats.done_cancelled += 1,
                        JobStatus::TimedOut => stats.done_timed_out += 1,
                        JobStatus::Poisoned(_) => stats.done_poisoned += 1,
                        JobStatus::KilledOverBudget => stats.done_killed_over_budget += 1,
                    }
                    if let Some(t) = &report.timings {
                        stats.stage_totals.tokenize += t.tokenize;
                        stats.stage_totals.names_h1 += t.names_h1;
                        stats.stage_totals.blocking += t.blocking;
                        stats.stage_totals.similarities += t.similarities;
                        stats.stage_totals.matching += t.matching;
                    }
                    stats.wall_total += report.wall;
                    stats.estimated_bytes_total += report.estimated_bytes;
                    stats.rss_delta_bytes_total += report.peak_rss_delta_bytes.unwrap_or(0);
                }
            }
        }
        stats
    }

    /// One fleet worker: claim the next admissible job, run it, repeat
    /// until the queue is closed and drained. Run exactly
    /// [`JobQueue::slots`] of these concurrently. `fleet_cancel` is the
    /// coarse batch-mode token (stop dispatching); per-job cancellation
    /// goes through [`JobQueue::cancel`]. `on_done` fires once per
    /// terminal report, in completion order, outside the queue lock; it
    /// receives the spec too, so callers with post-completion side
    /// effects (the daemon invalidating a patched index's cache entry)
    /// can see what kind of job finished.
    pub fn worker(
        &self,
        opts: &ServeOptions,
        fleet_cancel: &CancelToken,
        on_done: &(impl Fn(&JobSpec, &JobReport) + Sync),
    ) {
        loop {
            match self.claim(fleet_cancel) {
                Claim::Exit => return,
                Claim::Flipped { spec, report } => on_done(&spec, &report),
                Claim::Run { id, allot } => {
                    // Every attempt gets a fresh trace: its spans and
                    // events never interleave with a previous attempt's.
                    let job_trace = trace::new_trace_id();
                    let (spec, estimate, raw_estimate, job_cancel, timeout, attempt) = {
                        let mut guard = self.lock();
                        let e = &mut guard.entries[id];
                        e.trace_ids.push(job_trace);
                        (
                            e.spec.clone(),
                            e.estimate,
                            e.raw_estimate,
                            e.cancel.clone(),
                            e.timeout,
                            e.attempt,
                        )
                    };
                    trace::emit_job(
                        Level::Info,
                        "job.running",
                        id as i64,
                        job_trace,
                        format!("name={:?} attempt={attempt} threads={allot}", spec.name),
                    );
                    // The deadline clock starts at dispatch (queue wait
                    // does not count) and restarts on every attempt.
                    if let Some(timeout) = timeout {
                        job_cancel.set_deadline(timeout);
                    }
                    let trace_binding = trace::trace_scope(job_trace, id as i64);
                    let (mut report, class) = run_job(&spec, opts, allot, estimate, &job_cancel);
                    drop(trace_binding);
                    // Self-calibrating admission: successful jobs teach
                    // the profile's estimate-accuracy ratio, and a
                    // charged estimate off by more than 2× either way is
                    // worth an operator-visible warning.
                    if report.status.is_ok() {
                        if let Some(delta) = report.peak_rss_delta_bytes {
                            self.observe_calibration(spec.profile_key(), raw_estimate, delta);
                        }
                        if let Some(ratio) = report.rss_estimate_ratio() {
                            if !(0.5..=2.0).contains(&ratio) {
                                minoan_obs::warn!(
                                    "serve.admission",
                                    "job {:?}: admission estimate off by {ratio:.2}x \
                                     (charged {estimate} bytes, measured {} bytes); future \
                                     {:?} submissions will use the recalibrated ratio",
                                    spec.name,
                                    report.peak_rss_delta_bytes.unwrap_or(0),
                                    spec.profile_key(),
                                );
                            }
                        }
                    }
                    let mut guard = self.lock();
                    guard.active -= 1;
                    guard.in_flight_bytes -= estimate;
                    guard.threads_in_use -= allot;
                    let entry = &mut guard.entries[id];
                    if matches!(class, EndClass::Panicked) {
                        entry.panics += 1;
                    }
                    // Quarantine before the retry decision: the second
                    // panic is terminal even with retry budget left.
                    let poisoned =
                        matches!(class, EndClass::Panicked) && entry.panics >= POISON_PANICS;
                    // An operator cancel that raced a transient failure
                    // is still a cancel; never resurrect the job.
                    let user_cancelled =
                        entry.cancel.reason() == Some(minoan_exec::CancelReason::User);
                    let retry = !poisoned
                        && !user_cancelled
                        && !matches!(class, EndClass::Final)
                        && entry.attempt < entry.max_retries;
                    if retry {
                        entry.attempt += 1;
                        entry.cancel = CancelToken::new();
                        let delay = minoan_exec::backoff::jittered_delay(
                            RETRY_BACKOFF_BASE,
                            entry.attempt - 1,
                            RETRY_BACKOFF_CAP,
                            retry_seed(id, entry.attempt),
                        );
                        entry.not_before = Some(Instant::now() + delay);
                        entry.queued_at = Instant::now();
                        let next_attempt = entry.attempt;
                        guard.retries_scheduled += 1;
                        guard.transition(id, Phase::Queued);
                        guard.pending.push_back(id);
                        drop(guard);
                        trace::emit_job(
                            Level::Warn,
                            "job.retry",
                            id as i64,
                            job_trace,
                            format!(
                                "attempt {attempt} ended {}; attempt {next_attempt} \
                                 re-queued after {delay:?}",
                                report.status.label()
                            ),
                        );
                        self.admit.notify_all();
                        // Not terminal: no on_done, no done notification.
                        continue;
                    }
                    if poisoned {
                        let detail = match &report.status {
                            JobStatus::Failed(e) => e.clone(),
                            other => other.label().to_string(),
                        };
                        report.status = JobStatus::Poisoned(detail);
                    }
                    guard.transition(id, Phase::Done(Box::new(report.clone())));
                    drop(guard);
                    if let Some(timings) = &report.timings {
                        crate::telemetry::observe_stages(timings);
                    }
                    trace::emit_job(
                        Level::Info,
                        "job.done",
                        id as i64,
                        job_trace,
                        format!(
                            "status={} wall_ms={:.1}",
                            report.status.label(),
                            report.wall.as_secs_f64() * 1e3
                        ),
                    );
                    self.admit.notify_all();
                    self.done.notify_all();
                    on_done(&spec, &report);
                }
            }
        }
    }

    /// The admission loop: blocks until the head of the queue fits the
    /// memory budget (or must be flipped/skipped) or the queue drains.
    fn claim(&self, fleet_cancel: &CancelToken) -> Claim {
        let mut guard = self.lock();
        loop {
            let Some(&id) = guard.pending.front() else {
                // Drained. A closed queue gets no more work, so the
                // worker exits (jobs still running elsewhere are owned
                // by their own workers); an open queue blocks for the
                // next submission or close().
                if guard.closed {
                    return Claim::Exit;
                }
                guard = self.admit.wait(guard).expect("queue lock");
                continue;
            };
            if fleet_cancel.is_cancelled() {
                let spec = guard.entries[id].spec.clone();
                let report = guard.flip_queued_to_cancelled(id);
                drop(guard);
                self.done.notify_all();
                return Claim::Flipped {
                    spec: Box::new(spec),
                    report: Box::new(report),
                };
            }
            // Backoff gate: a retried job at the head waits out its
            // delay here. FIFO order is preserved — jobs behind it wait
            // too, which keeps retry scheduling deterministic.
            if let Some(nb) = guard.entries[id].not_before {
                let now = Instant::now();
                if now < nb {
                    let (g, _) = self
                        .admit
                        .wait_timeout(guard, nb - now)
                        .expect("queue lock");
                    guard = g;
                    continue;
                }
            }
            let est = guard.entries[id].estimate;
            // Never dispatch beyond the execution width: a slot past
            // the core count waits here instead of thrashing the
            // machine with one more CPU-bound pipeline.
            if guard.active >= self.width {
                guard = self.admit.wait(guard).expect("queue lock");
                continue;
            }
            let fits = self.budget_bytes == 0
                || guard.active == 0
                || guard.in_flight_bytes.saturating_add(est) <= self.budget_bytes;
            if fits {
                // Straggler widening with real accounting: divide the
                // threads not already allotted to running jobs across
                // the width left to fill (this claim included), so
                // allotments sum to the thread budget while the fleet
                // is full and the last jobs widen as the queue drains.
                let fill = (self.width - guard.active).min(guard.pending.len()).max(1);
                let free = self.threads.saturating_sub(guard.threads_in_use);
                let allot = (free / fill).max(1);
                crate::telemetry::QUEUE_WAIT.observe(guard.entries[id].queued_at.elapsed());
                guard.pending.pop_front();
                guard.transition(id, Phase::Running);
                guard.active += 1;
                guard.peak_active = guard.peak_active.max(guard.active);
                guard.in_flight_bytes += est;
                guard.threads_in_use += allot;
                return Claim::Run { id, allot };
            }
            guard = self.admit.wait(guard).expect("queue lock");
        }
    }

    /// Consumes the queue, returning every report in submission order.
    /// Call after all workers have exited; panics if a job never
    /// reached a terminal state (a scheduler bug).
    pub fn into_reports(self) -> Vec<JobReport> {
        self.inner
            .into_inner()
            .expect("no worker panicked holding the queue lock")
            .entries
            .into_iter()
            .enumerate()
            .map(|(id, e)| match e.phase {
                Phase::Done(report) => *report,
                other => panic!(
                    "job #{id} ({}) ended {:?} without a report",
                    e.spec.name,
                    other.observable()
                ),
            })
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        self.inner.lock().expect("queue lock")
    }
}

/// Resolves `opts` against manifest-level knobs into concrete
/// `(slots, threads, budget_bytes)` values. `job_count` caps the slot
/// count in batch mode; pass `usize::MAX` for a daemon, which has no
/// job count up front.
///
/// Admission learns the core count: manifest-derived `slots` and
/// `threads` clamp to `available_parallelism()` — a manifest written on
/// a 16-core box must not dispatch 16-wide on a 2-core one. An
/// **explicit** option (CLI `--slots`/`--threads`) is an operator
/// decision and is honored as written (`0` still meaning "all
/// available cores").
pub(crate) fn resolve_fleet_knobs(
    opts: &ServeOptions,
    manifest_slots: usize,
    manifest_threads: usize,
    manifest_budget_mib: usize,
    job_count: usize,
) -> (usize, usize, u64) {
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let or_available = |v: usize| if v == 0 { available } else { v };
    let clamp_manifest = |v: usize| if v == 0 { available } else { v.min(available) };
    let slots = match opts.slots {
        Some(explicit) => or_available(explicit),
        None => clamp_manifest(manifest_slots),
    }
    .min(job_count.max(1))
    .min(MAX_THREADS);
    let threads = match opts.threads {
        Some(explicit) => or_available(explicit),
        None => clamp_manifest(manifest_threads),
    }
    .min(MAX_THREADS);
    // Budget zero means unlimited (not "all available").
    let budget_mib = opts.memory_budget_mib.unwrap_or(manifest_budget_mib);
    (slots, threads, budget_mib as u64 * (1 << 20))
}

/// Runs every job of `manifest` and returns the fleet report.
pub fn run_batch(manifest: &Manifest, opts: &ServeOptions) -> ServeReport {
    run_batch_streaming(manifest, opts, &CancelToken::new(), |_, _| {})
}

/// Like [`run_batch`], but streaming: `on_done` is invoked once per job
/// as it finishes (in completion order, possibly from multiple worker
/// threads), before the fleet report is assembled. Implemented on the
/// same live [`JobQueue`] the daemon uses: submit everything, close,
/// drain.
pub fn run_batch_streaming(
    manifest: &Manifest,
    opts: &ServeOptions,
    cancel: &CancelToken,
    on_done: impl Fn(&JobSpec, &JobReport) + Sync,
) -> ServeReport {
    let t0 = Instant::now();
    let (slots, threads, budget_bytes) = resolve_fleet_knobs(
        opts,
        manifest.slots,
        manifest.threads,
        manifest.memory_budget_mib,
        manifest.jobs.len(),
    );
    let queue = JobQueue::new(slots, threads, budget_bytes).with_job_defaults(
        opts.timeout_ms.unwrap_or(manifest.timeout_ms),
        opts.max_retries.unwrap_or(manifest.max_retries),
    );
    for job in &manifest.jobs {
        queue
            .submit(job.clone())
            .expect("the batch queue is open while submitting");
    }
    queue.close();
    std::thread::scope(|scope| {
        for _ in 0..slots {
            scope.spawn(|| queue.worker(opts, cancel, &on_done));
        }
    });
    let peak_active = queue.peak_concurrent();
    ServeReport {
        jobs: queue.into_reports(),
        slots,
        threads,
        memory_budget_bytes: budget_bytes,
        peak_concurrent_jobs: peak_active,
        wall: t0.elapsed(),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// How a job ended without producing a normal report. `transient`
/// separates failures worth retrying (I/O errors, injected faults)
/// from deterministic ones (parse errors, bad config) that would fail
/// identically on every attempt.
enum JobEnd {
    Failed { error: String, transient: bool },
    Cancelled,
}

impl JobEnd {
    fn permanent(error: String) -> Self {
        JobEnd::Failed {
            error,
            transient: false,
        }
    }

    fn transient(error: String) -> Self {
        JobEnd::Failed {
            error,
            transient: true,
        }
    }
}

/// The retry classification of a finished attempt, decided by
/// [`run_job`] and consumed by the worker's retry logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EndClass {
    /// Terminal regardless of retry budget: success, permanent failure,
    /// operator cancel, or an over-budget kill.
    Final,
    /// Worth retrying under the job's `max_retries` budget: I/O errors,
    /// injected faults, deadline expiry.
    Transient,
    /// A panic: retryable once, but the second panic poisons the job
    /// (see [`POISON_PANICS`]).
    Panicked,
}

/// Deterministic per-(job, attempt) seed for backoff jitter. Same
/// splitmix64 finalizer the fault plan uses; wall-clock randomness
/// would break replayable scheduling.
fn retry_seed(id: JobId, attempt: u32) -> u64 {
    let mut z = (id as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Watches the process RSS while one job runs and cancels its token
/// with [`CancelReason::OverBudget`] if the growth over `baseline`
/// exceeds `limit` bytes. Returns a handle; set the flag and join to
/// stop. Attribution is process-wide, hence opt-in via
/// [`ServeOptions::rss_kill_factor`].
fn spawn_rss_watchdog(
    cancel: CancelToken,
    baseline: u64,
    limit: u64,
) -> (Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        while !stop2.load(Ordering::Acquire) && !cancel.is_cancelled() {
            if let Some(now) = current_rss_bytes() {
                if now.saturating_sub(baseline) > limit {
                    cancel.cancel_with(minoan_exec::CancelReason::OverBudget);
                    return;
                }
            }
            std::thread::sleep(WATCHDOG_INTERVAL);
        }
    });
    (stop, handle)
}

/// Runs one job start to finish, converting every failure mode — input
/// errors, config errors, panics — into a `Failed` report and a
/// checkpoint-observed cancellation into a `Cancelled`, `TimedOut`, or
/// `KilledOverBudget` one (the token's [`CancelReason`] decides which).
/// The returned [`EndClass`] tells the worker whether a retry is
/// worthwhile.
fn run_job(
    spec: &JobSpec,
    opts: &ServeOptions,
    threads: usize,
    estimated: u64,
    cancel: &CancelToken,
) -> (JobReport, EndClass) {
    let t0 = Instant::now();
    let rss_before = peak_rss_bytes();
    let watchdog = match opts.rss_kill_factor {
        Some(factor) if factor > 0.0 && estimated > 0 => {
            let limit = (estimated as f64 * factor) as u64;
            current_rss_bytes().map(|base| spawn_rss_watchdog(cancel.clone(), base, limit))
        }
        _ => None,
    };
    // The token rides on the executor so pool-backed waves can abort
    // between task quanta, not just between waves.
    let exec = Executor::new(opts.executor, threads).with_cancel(cancel.clone());
    let outcome = catch_unwind(AssertUnwindSafe(|| execute(spec, opts, &exec, cancel)))
        .unwrap_or_else(|panic| {
            // A cancelled pool wave that escaped a stage's catch_cancel
            // net is still a cancellation, not a failure.
            if panic.downcast_ref::<Cancelled>().is_some() {
                return Err(JobEnd::Cancelled);
            }
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(JobEnd::Failed {
                error: format!("job panicked: {msg}"),
                transient: true,
            })
        });
    if let Some((stop, handle)) = watchdog {
        stop.store(true, Ordering::Release);
        let _ = handle.join();
    }
    let (mut report, class) = match outcome {
        Ok(report) => (report, EndClass::Final),
        Err(JobEnd::Failed { error, transient }) => {
            let class = if error.starts_with("job panicked:") {
                EndClass::Panicked
            } else if transient {
                EndClass::Transient
            } else {
                EndClass::Final
            };
            (
                JobReport::empty(&spec.name, JobStatus::Failed(error)),
                class,
            )
        }
        Err(JobEnd::Cancelled) => match cancel.reason() {
            Some(minoan_exec::CancelReason::DeadlineExceeded) => (
                JobReport::empty(&spec.name, JobStatus::TimedOut),
                EndClass::Transient,
            ),
            Some(minoan_exec::CancelReason::OverBudget) => (
                JobReport::empty(&spec.name, JobStatus::KilledOverBudget),
                EndClass::Final,
            ),
            _ => (
                JobReport::empty(&spec.name, JobStatus::Cancelled),
                EndClass::Final,
            ),
        },
    };
    report.wall = t0.elapsed();
    report.threads = exec.threads();
    report.estimated_bytes = estimated;
    report.peak_rss_bytes = peak_rss_bytes();
    // The measured counterpart of the admission estimate: how much this
    // job raised the process high-water mark (see the field docs for
    // the attribution caveat under concurrency).
    report.peak_rss_delta_bytes = match (rss_before, report.peak_rss_bytes) {
        (Some(before), Some(after)) => Some(after.saturating_sub(before)),
        _ => None,
    };
    (report, class)
}

/// Loads the job's inputs and resolves the pair on `exec`, observing
/// `cancel` at the ingest and pipeline checkpoints.
fn execute(
    spec: &JobSpec,
    opts: &ServeOptions,
    exec: &Executor,
    cancel: &CancelToken,
) -> Result<JobReport, JobEnd> {
    // Named fault site for chaos tests: an injected I/O error here is a
    // transient infrastructure failure, retried under the job's budget.
    minoan_exec::faults::point("serve.job.execute")
        .map_err(|e| JobEnd::transient(format!("execute fault: {e}")))?;
    if let JobInput::IndexPatch { path, ops, .. } = &spec.input {
        return execute_patch(spec, path, ops, exec, cancel);
    }
    let config = spec.config(&opts.base);
    let matcher =
        MinoanEr::new(config.clone()).map_err(|e| JobEnd::permanent(format!("bad config: {e}")))?;
    let (pair, truth) = load_input(spec, &config, exec, cancel)?;
    let indexed = matcher
        .run_cancellable_indexed(&pair, exec, cancel)
        .map_err(|Cancelled| JobEnd::Cancelled)?;
    let out = indexed.output.clone();
    // An index build persists the run's structures *after* the pipeline
    // finished, on the very output object: the matching a later query
    // serves is the matching this run produced, byte for byte. A write
    // failure is transient infrastructure trouble (disk full, fault
    // injection at `store.artifact.read`'s sibling path), retried under
    // the job's budget.
    if let Some(path) = &spec.persist {
        let artifact =
            minoan_core::IndexArtifact::from_run(&spec.name, &pair, indexed, matcher.config());
        artifact
            .write_to(path)
            .map_err(|e| JobEnd::transient(format!("cannot persist index: {e}")))?;
    }
    let quality = truth
        .as_ref()
        .map(|t| MatchQuality::evaluate(&out.matching, t));
    let matches = out
        .matching
        .iter()
        .map(|(a, b)| {
            (
                pair.first.entity_uri(a).to_string(),
                pair.second.entity_uri(b).to_string(),
            )
        })
        .collect();
    let mut report = JobReport::empty(&spec.name, JobStatus::Ok);
    report.matches = matches;
    report.h1_matches = out.report.h1_matches;
    report.h2_matches = out.report.h2_matches;
    report.h3_matches = out.report.h3_matches;
    report.h4_removed = out.report.h4_removed;
    report.quality = quality;
    report.timings = Some(out.report.timings);
    Ok(report)
}

/// Runs one incremental delta patch against a persisted index: load the
/// artifact (`store.artifact.read` fault site), apply the ops through
/// [`minoan_core::delta`]'s O(delta) re-resolution, persist the patched
/// artifact atomically (`core.delta.apply` fault site fires *before*
/// the temp-file/rename write, so a crash leaves the old artifact fully
/// intact). The report's matches are the patched matching, so a patch
/// job fingerprints exactly like a from-scratch rebuild of the same
/// final KB state.
fn execute_patch(
    spec: &JobSpec,
    path: &std::path::Path,
    ops: &[minoan_kb::DeltaOp],
    exec: &Executor,
    cancel: &CancelToken,
) -> Result<JobReport, JobEnd> {
    use minoan_kb::ArtifactError;
    let mut artifact = minoan_core::IndexArtifact::read_from(path).map_err(|e| match e {
        // An I/O error (or injected fault) may clear up; a corrupt or
        // wrong-version file fails identically on every attempt.
        ArtifactError::Io(e) => {
            JobEnd::transient(format!("cannot read index {}: {e}", path.display()))
        }
        other => JobEnd::permanent(format!("cannot read index {}: {other}", path.display())),
    })?;
    let delta = artifact
        .apply_delta(ops, exec, cancel)
        .map_err(|Cancelled| JobEnd::Cancelled)?;
    artifact
        .persist_patch(path)
        .map_err(|e| JobEnd::transient(format!("cannot persist patched index: {e}")))?;
    let mut report = JobReport::empty(&spec.name, JobStatus::Ok);
    report.matches = artifact.matched_uri_pairs();
    report.h1_matches = delta.h1_matches;
    report.h2_matches = delta.h2_matches;
    report.h3_matches = delta.h3_matches;
    report.h4_removed = delta.h4_removed;
    Ok(report)
}

/// Loads the KB pair (and ground truth, if any) for one job.
fn load_input(
    spec: &JobSpec,
    config: &MinoanConfig,
    exec: &Executor,
    cancel: &CancelToken,
) -> Result<(KbPair, Option<GroundTruth>), JobEnd> {
    match &spec.input {
        JobInput::Synthetic { kind, seed, scale } => {
            cancel.checkpoint().map_err(|_| JobEnd::Cancelled)?;
            let Dataset { pair, truth, .. } = kind.generate_scaled(*seed, *scale);
            Ok((pair, Some(truth)))
        }
        JobInput::Files { first, second } => {
            let pair = KbPair::new(
                load_kb_file_cancellable(first, "E1", config, exec, cancel)?,
                load_kb_file_cancellable(second, "E2", config, exec, cancel)?,
            );
            let truth = match &spec.truth {
                Some(path) => Some(load_truth_file(path, &pair).map_err(JobEnd::permanent)?),
                None => None,
            };
            Ok((pair, truth))
        }
        JobInput::IndexPatch { .. } => {
            unreachable!("patch jobs short-circuit to execute_patch before input loading")
        }
    }
}

/// Streams one KB file through the chunked parallel parser, picking the
/// format by extension (`.nt`/`.ntriples`, case-insensitive, vs TSV).
/// The one KB-file loader in the workspace: the CLI's `match`/`stats`
/// paths wrap it, so a format or diagnostics fix lands everywhere.
pub fn load_kb_file(
    path: &std::path::Path,
    name: &str,
    config: &MinoanConfig,
    exec: &Executor,
) -> Result<minoan_kb::KnowledgeBase, String> {
    match load_kb_file_cancellable(path, name, config, exec, &CancelToken::new()) {
        Ok(kb) => Ok(kb),
        Err(JobEnd::Failed { error, .. }) => Err(error),
        Err(JobEnd::Cancelled) => unreachable!("a fresh token is never cancelled"),
    }
}

/// The cancellable loader behind [`load_kb_file`]: the streaming parse
/// observes `cancel` between chunk waves.
fn load_kb_file_cancellable(
    path: &std::path::Path,
    name: &str,
    config: &MinoanConfig,
    exec: &Executor,
    cancel: &CancelToken,
) -> Result<minoan_kb::KnowledgeBase, JobEnd> {
    let file = std::fs::File::open(path)
        .map_err(|e| JobEnd::transient(format!("cannot read {}: {e}", path.display())))?;
    let opts = config.stream_options();
    let is_nt = path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("nt") || e.eq_ignore_ascii_case("ntriples"));
    let result = if is_nt {
        parse::parse_ntriples_reader_cancellable(name, file, exec, opts, cancel)
    } else {
        parse::parse_tsv_reader_cancellable(name, file, exec, opts, cancel)
    };
    result.map_err(|e| match e {
        parse::StreamError::Cancelled => JobEnd::Cancelled,
        // Malformed input fails the same way on every attempt; a reader
        // error (or injected fault) may not.
        parse::StreamError::Parse(e) => {
            JobEnd::permanent(format!("cannot parse {}: {e}", path.display()))
        }
        parse::StreamError::Io(e) => {
            JobEnd::transient(format!("cannot read {}: {e}", path.display()))
        }
    })
}

/// Loads a 2-column TSV of matching URIs. Lines naming URIs absent from
/// the pair are skipped (the truth may cover a superset of the slice
/// being resolved); malformed lines are errors. Shared with the CLI's
/// `--truth` flag.
pub fn load_truth_file(path: &std::path::Path, pair: &KbPair) -> Result<GroundTruth, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut truth = Matching::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.splitn(2, '\t');
        let (Some(u1), Some(u2)) = (cols.next(), cols.next()) else {
            return Err(format!(
                "{}:{}: expected two tab-separated URIs",
                path.display(),
                i + 1
            ));
        };
        if let (Some(e1), Some(e2)) = (pair.first.entity_by_uri(u1), pair.second.entity_by_uri(u2))
        {
            truth.insert(e1, e2);
        }
    }
    Ok(truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::JobInput;
    use minoan_datagen::DatasetKind;

    fn synthetic_job(name: &str, kind: DatasetKind, scale: f64) -> JobSpec {
        JobSpec {
            name: name.into(),
            input: JobInput::Synthetic {
                kind,
                seed: 20180416,
                scale,
            },
            truth: None,
            theta: None,
            candidates_k: None,
            purge_blocks: None,
            timeout_ms: None,
            max_retries: None,
            persist: None,
        }
    }

    fn small_manifest() -> Manifest {
        Manifest {
            slots: 2,
            threads: 2,
            memory_budget_mib: 0,
            timeout_ms: 0,
            max_retries: 0,
            jobs: vec![
                synthetic_job("restaurant", DatasetKind::Restaurant, 0.05),
                synthetic_job("yago", DatasetKind::YagoImdb, 0.05),
                synthetic_job("restaurant-2", DatasetKind::Restaurant, 0.08),
            ],
        }
    }

    #[test]
    fn fleet_resolves_every_job() {
        let report = run_batch(&small_manifest(), &ServeOptions::default());
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.ok_count(), 3);
        for job in &report.jobs {
            assert!(job.status.is_ok(), "{}: {:?}", job.name, job.status);
            assert!(!job.matches.is_empty(), "{} found no matches", job.name);
            assert!(job.quality.is_some(), "synthetic jobs carry truth");
            // Allotments respect the fleet's thread budget.
            assert!(job.threads >= 1 && job.threads <= report.threads);
        }
        // Report order is manifest order, not completion order.
        let names: Vec<&str> = report.jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names, ["restaurant", "yago", "restaurant-2"]);
    }

    #[test]
    fn streaming_callback_sees_every_job() {
        let seen = Mutex::new(Vec::new());
        let report = run_batch_streaming(
            &small_manifest(),
            &ServeOptions::default(),
            &CancelToken::new(),
            |_, job| seen.lock().unwrap().push(job.name.clone()),
        );
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        let mut expect: Vec<String> = report.jobs.iter().map(|j| j.name.clone()).collect();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn tiny_budget_serializes_but_completes() {
        let manifest = Manifest {
            slots: 3,
            threads: 3,
            memory_budget_mib: 1,
            timeout_ms: 0,
            max_retries: 0,
            jobs: vec![
                synthetic_job("a", DatasetKind::Restaurant, 0.3),
                synthetic_job("b", DatasetKind::Restaurant, 0.3),
                synthetic_job("c", DatasetKind::Restaurant, 0.3),
            ],
        };
        // Every job estimates above the whole budget…
        for job in &manifest.jobs {
            assert!(job.estimated_bytes() > 1 << 20);
        }
        let report = run_batch(&manifest, &ServeOptions::default());
        // …so each runs alone (head-of-queue admission), and all finish.
        assert_eq!(
            report.ok_count(),
            3,
            "over-budget jobs run alone, not never"
        );
        assert_eq!(
            report.peak_concurrent_jobs, 1,
            "nothing fits next to an over-budget job"
        );
    }

    #[test]
    fn cancellation_skips_undispatched_jobs() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let report = run_batch_streaming(
            &small_manifest(),
            &ServeOptions::default(),
            &cancel,
            |_, _| {},
        );
        assert_eq!(report.ok_count(), 0);
        assert!(report.jobs.iter().all(|j| j.status == JobStatus::Cancelled));
    }

    #[test]
    fn invalid_override_fails_alone() {
        let mut manifest = small_manifest();
        manifest.jobs[1].theta = Some(0.999999); // valid
        manifest.jobs[1].candidates_k = Some(usize::MAX); // absurd but valid
        let mut bad = synthetic_job("bad", DatasetKind::Restaurant, 0.05);
        // Bypass manifest validation to exercise the scheduler's own
        // config check: a hand-built spec with an out-of-range theta.
        bad.theta = Some(7.0);
        manifest.jobs.push(bad);
        let report = run_batch(&manifest, &ServeOptions::default());
        assert_eq!(report.ok_count(), 3);
        assert_eq!(report.failed_count(), 1);
        let failed = &report.jobs[3];
        assert!(matches!(&failed.status, JobStatus::Failed(e) if e.contains("theta")));
    }

    #[test]
    fn missing_file_fails_alone() {
        let mut manifest = small_manifest();
        manifest.jobs.push(JobSpec {
            name: "ghost".into(),
            input: JobInput::Files {
                first: "/no/such/file.tsv".into(),
                second: "/no/such/other.tsv".into(),
            },
            truth: None,
            theta: None,
            candidates_k: None,
            purge_blocks: None,
            timeout_ms: None,
            max_retries: None,
            persist: None,
        });
        let report = run_batch(&manifest, &ServeOptions::default());
        assert_eq!(report.ok_count(), 3);
        let ghost = &report.jobs[3];
        assert!(matches!(&ghost.status, JobStatus::Failed(e) if e.contains("cannot read")));
    }

    #[test]
    fn results_do_not_depend_on_fleet_shape() {
        let manifest = small_manifest();
        let base: Vec<String> = run_batch(
            &manifest,
            &ServeOptions {
                slots: Some(1),
                threads: Some(1),
                executor: ExecutorKind::Sequential,
                ..ServeOptions::default()
            },
        )
        .jobs
        .iter()
        .map(|j| j.fingerprint())
        .collect();
        for (slots, threads) in [(2, 2), (3, 7)] {
            let got: Vec<String> = run_batch(
                &manifest,
                &ServeOptions {
                    slots: Some(slots),
                    threads: Some(threads),
                    ..ServeOptions::default()
                },
            )
            .jobs
            .iter()
            .map(|j| j.fingerprint())
            .collect();
            assert_eq!(base, got, "slots={slots} threads={threads}");
        }
    }

    #[test]
    fn straggler_gets_the_whole_budget() {
        // One job, many slots: the single job is the straggler and must
        // receive every thread in the budget. The budget is an explicit
        // option (manifest-derived values clamp to the core count and
        // would not survive a 1-core CI box).
        let manifest = Manifest {
            slots: 4,
            threads: 6,
            memory_budget_mib: 0,
            timeout_ms: 0,
            max_retries: 0,
            jobs: vec![synthetic_job("only", DatasetKind::Restaurant, 0.05)],
        };
        let opts = ServeOptions {
            threads: Some(6),
            ..ServeOptions::default()
        };
        let report = run_batch(&manifest, &opts);
        assert_eq!(report.jobs[0].threads, 6);
    }

    #[test]
    fn manifest_knobs_clamp_to_available_cores_but_explicit_ones_do_not() {
        let available = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let opts = ServeOptions::default();
        // Manifest values far above the core count clamp down…
        let (slots, threads, _) = resolve_fleet_knobs(&opts, 4096, 4096, 0, usize::MAX);
        assert_eq!(slots, available.min(MAX_THREADS));
        assert_eq!(threads, available.min(MAX_THREADS));
        // …manifest zero means "all available"…
        let (slots, threads, _) = resolve_fleet_knobs(&opts, 0, 0, 0, usize::MAX);
        assert_eq!(slots, available.min(MAX_THREADS));
        assert_eq!(threads, available.min(MAX_THREADS));
        // …and an explicit override is an operator decision, honored
        // beyond the core count (the MAX_THREADS guard still applies).
        let explicit = ServeOptions {
            slots: Some(available + 3),
            threads: Some(available + 5),
            ..ServeOptions::default()
        };
        let (slots, threads, _) = resolve_fleet_knobs(&explicit, 1, 1, 0, usize::MAX);
        assert_eq!(slots, (available + 3).min(MAX_THREADS));
        assert_eq!(threads, (available + 5).min(MAX_THREADS));
    }

    #[test]
    fn execution_width_caps_dispatch_at_the_core_count() {
        let available = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        // The queue honors explicit slots as residency…
        let queue = JobQueue::new(available + 7, 2, 0);
        assert_eq!(queue.slots(), available + 7);
        // …but never dispatches more jobs than cores.
        assert_eq!(queue.width(), available);

        let manifest = Manifest {
            slots: 0,
            threads: 0,
            memory_budget_mib: 0,
            timeout_ms: 0,
            max_retries: 0,
            jobs: (0..available + 9)
                .map(|i| synthetic_job(&format!("j{i}"), DatasetKind::Restaurant, 0.03))
                .collect(),
        };
        let opts = ServeOptions {
            slots: Some(available + 7),
            ..ServeOptions::default()
        };
        let report = run_batch(&manifest, &opts);
        assert_eq!(report.slots, available + 7, "explicit slots are reported");
        assert!(
            report.peak_concurrent_jobs <= available,
            "peak concurrency {} exceeded the execution width {}",
            report.peak_concurrent_jobs,
            available
        );
        assert_eq!(report.ok_count(), available + 9);
    }

    #[test]
    fn queue_lifecycle_submit_run_wait() {
        let queue = JobQueue::new(2, 2, 0);
        let a = queue
            .submit(synthetic_job("a", DatasetKind::Restaurant, 0.05))
            .unwrap();
        let b = queue
            .submit(synthetic_job("b", DatasetKind::Restaurant, 0.05))
            .unwrap();
        assert_eq!((a, b), (0, 1));
        let opts = ServeOptions::default();
        let fleet = CancelToken::new();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| queue.worker(&opts, &fleet, &|_, _| {}));
            }
            // wait() from outside the worker pool, while workers run.
            let ra = queue.wait(a).expect("known id");
            assert_eq!(ra.status, JobStatus::Ok);
            queue.close();
        });
        let rb = queue.wait(b).unwrap();
        assert_eq!(rb.status, JobStatus::Ok);
        assert!(queue.wait(99).is_none(), "unknown id");
        let snaps = queue.snapshot();
        assert_eq!(snaps.len(), 2);
        assert!(snaps
            .iter()
            .all(|s| s.phase == JobPhase::Done && s.status.is_some()));
        assert_eq!(queue.into_reports().len(), 2);
    }

    #[test]
    fn cancelling_a_queued_job_flips_it_atomically() {
        // No workers at all: the job must terminate via the cancel path
        // alone, and the snapshot can never show running+cancelled.
        let queue = JobQueue::new(1, 1, 0);
        let id = queue
            .submit(synthetic_job("doomed", DatasetKind::Restaurant, 0.05))
            .unwrap();
        assert_eq!(queue.cancel(id), CancelOutcome::CancelledQueued);
        assert_eq!(queue.cancel(id), CancelOutcome::AlreadyDone);
        assert_eq!(queue.cancel(42), CancelOutcome::Unknown);
        let report = queue.wait(id).unwrap();
        assert_eq!(report.status, JobStatus::Cancelled);
        let snap = &queue.snapshot()[0];
        assert_eq!(snap.phase, JobPhase::Done);
        assert_eq!(snap.status, Some(JobStatus::Cancelled));
    }

    #[test]
    fn admission_estimates_self_calibrate_per_profile() {
        let queue = JobQueue::new(1, 1, 0);
        let spec = synthetic_job("cal", DatasetKind::Restaurant, 0.05);
        let profile = spec.profile_key();
        let raw = spec.estimated_bytes();
        assert!(raw > 0);
        // Before any observation, the raw estimate is charged as-is.
        assert_eq!(queue.calibration_ratio(profile), None);
        assert_eq!(queue.calibrated_estimate(&spec, raw), raw);
        // First observation seeds the ratio outright (measured 3× the
        // estimate), and submissions start charging it.
        queue.observe_calibration(profile, raw, raw * 3);
        assert_eq!(queue.calibration_ratio(profile), Some(3.0));
        assert_eq!(queue.calibrated_estimate(&spec, raw), raw * 3);
        // Further observations blend in with EWMA weight 1/2.
        queue.observe_calibration(profile, raw, raw);
        assert_eq!(queue.calibration_ratio(profile), Some(2.0));
        // A wild measurement moves the ratio but the *applied* factor
        // stays clamped.
        queue.observe_calibration(profile, raw, raw * 1000);
        assert_eq!(queue.calibrated_estimate(&spec, raw), raw * 8);
        // Zero on either side of the ratio carries no signal.
        queue.observe_calibration("untouched", 0, 50);
        queue.observe_calibration("untouched", 50, 0);
        assert_eq!(queue.calibration_ratio("untouched"), None);
    }

    #[test]
    fn calibration_feeds_back_into_later_submissions() {
        // Run one synthetic job to completion; if it produced a usable
        // RSS measurement, a second submission of the same profile must
        // charge the recalibrated estimate.
        let queue = JobQueue::new(1, 1, 0);
        let spec = synthetic_job("first", DatasetKind::Restaurant, 0.05);
        let raw = spec.estimated_bytes();
        let id = queue.submit(spec.clone()).unwrap();
        let opts = ServeOptions::default();
        let fleet = CancelToken::new();
        std::thread::scope(|scope| {
            scope.spawn(|| queue.worker(&opts, &fleet, &|_, _| {}));
            let report = queue.wait(id).expect("known id");
            assert_eq!(report.status, JobStatus::Ok);
            queue.close();
        });
        match queue.calibration_ratio(spec.profile_key()) {
            Some(ratio) => {
                let (lo, hi) = CALIBRATION_FACTOR_RANGE;
                let expect = (raw as f64 * ratio.clamp(lo, hi)).round() as u64;
                assert_eq!(queue.calibrated_estimate(&spec, raw), expect);
            }
            // A zero RSS delta (high-water plateau) legitimately skips
            // the observation; the raw estimate must then survive.
            None => assert_eq!(queue.calibrated_estimate(&spec, raw), raw),
        }
    }

    #[test]
    fn submitting_to_a_closed_queue_fails() {
        let queue = JobQueue::new(1, 1, 0);
        queue.close();
        assert_eq!(
            queue
                .submit(synthetic_job("late", DatasetKind::Restaurant, 0.05))
                .unwrap_err(),
            SubmitError::Closed
        );
    }

    fn ghost_job(name: &str) -> JobSpec {
        JobSpec {
            name: name.into(),
            input: JobInput::Files {
                first: "/no/such/file.tsv".into(),
                second: "/no/such/other.tsv".into(),
            },
            truth: None,
            theta: None,
            candidates_k: None,
            purge_blocks: None,
            timeout_ms: None,
            max_retries: None,
            persist: None,
        }
    }

    fn drain(queue: &JobQueue, opts: &ServeOptions) {
        let fleet = CancelToken::new();
        queue.close();
        std::thread::scope(|scope| {
            scope.spawn(|| queue.worker(opts, &fleet, &|_, _| {}));
        });
    }

    #[test]
    fn transient_failure_retries_until_the_budget_is_exhausted() {
        // A missing input file is a transient (I/O) failure: with a
        // retry budget of 2 the job runs three times before its Failed
        // report becomes terminal.
        let queue = JobQueue::new(1, 1, 0).with_job_defaults(0, 2);
        let id = queue.submit(ghost_job("ghost")).unwrap();
        drain(&queue, &ServeOptions::default());
        let report = queue.wait(id).unwrap();
        assert!(
            matches!(&report.status, JobStatus::Failed(e) if e.contains("cannot read")),
            "{:?}",
            report.status
        );
        let stats = queue.stats();
        assert_eq!(stats.retries_scheduled, 2, "both retries were spent");
        assert_eq!(stats.done_failed, 1, "one terminal report, not three");
    }

    #[test]
    fn per_job_retry_budget_overrides_the_queue_default() {
        let queue = JobQueue::new(1, 1, 0).with_job_defaults(0, 5);
        let mut spec = ghost_job("stubborn");
        spec.max_retries = Some(1);
        let id = queue.submit(spec).unwrap();
        drain(&queue, &ServeOptions::default());
        assert!(queue.wait(id).is_some());
        assert_eq!(queue.stats().retries_scheduled, 1);
    }

    #[test]
    fn permanent_failures_are_never_retried() {
        // An out-of-range theta is a config error: deterministic, so a
        // retry budget must not be spent on it.
        let queue = JobQueue::new(1, 1, 0).with_job_defaults(0, 3);
        let mut bad = synthetic_job("bad", DatasetKind::Restaurant, 0.05);
        bad.theta = Some(7.0);
        let id = queue.submit(bad).unwrap();
        drain(&queue, &ServeOptions::default());
        let report = queue.wait(id).unwrap();
        assert!(matches!(&report.status, JobStatus::Failed(e) if e.contains("theta")));
        assert_eq!(queue.stats().retries_scheduled, 0);
    }

    #[test]
    fn deadline_expiry_times_the_job_out() {
        // A 1 ms deadline on a job that takes tens of ms: some pipeline
        // checkpoint observes the expired deadline and the job ends
        // TimedOut (with no retry budget, terminally).
        let queue = JobQueue::new(1, 1, 0);
        let mut spec = synthetic_job("slow", DatasetKind::Restaurant, 0.3);
        spec.timeout_ms = Some(1);
        let id = queue.submit(spec).unwrap();
        drain(&queue, &ServeOptions::default());
        let report = queue.wait(id).unwrap();
        assert_eq!(report.status, JobStatus::TimedOut);
        let stats = queue.stats();
        assert_eq!(stats.done_timed_out, 1);
        assert_eq!(stats.retries_scheduled, 0, "max_retries defaults to 0");
    }

    #[test]
    fn shedding_rejects_submissions_past_the_queue_depth_mark() {
        // No workers: submissions pile up in pending. Depth mark 2 →
        // the third submit sheds; terminal states free no room until
        // jobs leave pending.
        let queue = JobQueue::new(1, 1, 0).with_shed_limits(2, 0);
        queue
            .submit(synthetic_job("a", DatasetKind::Restaurant, 0.05))
            .unwrap();
        queue
            .submit(synthetic_job("b", DatasetKind::Restaurant, 0.05))
            .unwrap();
        let err = queue
            .submit(synthetic_job("c", DatasetKind::Restaurant, 0.05))
            .unwrap_err();
        assert!(
            matches!(&err, SubmitError::Overloaded(detail) if detail.contains("jobs pending")),
            "{err:?}"
        );
        assert_eq!(queue.stats().shed_total, 1);
        // Cancelling a queued job frees its pending slot; the next
        // submission is admitted again.
        queue.cancel(0);
        assert!(queue
            .submit(synthetic_job("d", DatasetKind::Restaurant, 0.05))
            .is_ok());
    }

    #[test]
    fn shedding_rejects_submissions_past_the_bytes_mark() {
        let probe = synthetic_job("probe", DatasetKind::Restaurant, 0.05);
        let est = probe.estimated_bytes();
        assert!(est > 0);
        // The first job fits exactly; anything more crosses the mark.
        let queue = JobQueue::new(1, 1, 0).with_shed_limits(0, est);
        queue.submit(probe).unwrap();
        let err = queue
            .submit(synthetic_job("extra", DatasetKind::Restaurant, 0.05))
            .unwrap_err();
        assert!(
            matches!(&err, SubmitError::Overloaded(detail) if detail.contains("bytes")),
            "{err:?}"
        );
    }

    #[test]
    fn retry_seeds_and_backoff_are_deterministic() {
        assert_eq!(retry_seed(3, 1), retry_seed(3, 1));
        assert_ne!(retry_seed(3, 1), retry_seed(3, 2));
        assert_ne!(retry_seed(3, 1), retry_seed(4, 1));
        let d1 = minoan_exec::backoff::jittered_delay(
            RETRY_BACKOFF_BASE,
            0,
            RETRY_BACKOFF_CAP,
            retry_seed(3, 1),
        );
        assert_eq!(
            d1,
            minoan_exec::backoff::jittered_delay(
                RETRY_BACKOFF_BASE,
                0,
                RETRY_BACKOFF_CAP,
                retry_seed(3, 1),
            )
        );
        assert!(d1 <= RETRY_BACKOFF_BASE);
        assert!(d1 >= RETRY_BACKOFF_BASE / 2);
    }
}
