//! HTTP front-end integration tests: jobs submitted over `POST
//! /v1/jobs` must be **bit-identical** to `minoaner batch` and solo
//! sequential runs ([`JobReport::fingerprint`]); `GET /v1/metrics` must
//! be parseable Prometheus text; and oversized, malformed or
//! unauthenticated requests must get clean `4xx` responses — never a
//! panic, a wedged accept loop, or any disturbance to running jobs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use minoaner::datagen::DatasetKind;
use minoaner::exec::ExecutorKind;
use minoaner::kb::Json;
use minoaner::serve::{
    run_batch, run_http, HttpOptions, JobInput, JobSpec, JobStatus, Manifest, ServeOptions,
};

/// A minimal test-side HTTP client: one fresh connection per request,
/// `Connection: close`, whole-response reads.
struct Http {
    addr: SocketAddr,
    token: Option<&'static str>,
}

/// Status code, full header section, body.
struct Raw {
    status: u16,
    head: String,
    body: String,
}

impl Http {
    /// Writes raw bytes, optionally half-closing the write side, and
    /// parses whatever response comes back.
    fn raw(&self, bytes: &[u8], half_close: bool) -> Raw {
        let mut stream = TcpStream::connect(self.addr).expect("connect");
        stream.write_all(bytes).expect("send");
        stream.flush().unwrap();
        if half_close {
            stream.shutdown(std::net::Shutdown::Write).unwrap();
        }
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read response");
        let raw = String::from_utf8(raw).expect("responses are UTF-8");
        let (head, body) = raw
            .split_once("\r\n\r\n")
            .unwrap_or_else(|| panic!("no header/body split in {raw:?}"));
        let status = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line in {head:?}"));
        Raw {
            status,
            head: head.to_string(),
            body: body.to_string(),
        }
    }

    fn request(&self, method: &str, path: &str, body: Option<&Json>) -> Raw {
        let payload = body.map(Json::compact).unwrap_or_default();
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
        if let Some(token) = self.token {
            head += &format!("Authorization: Bearer {token}\r\n");
        }
        if !payload.is_empty() {
            head += &format!("Content-Length: {}\r\n", payload.len());
        }
        head += "\r\n";
        self.raw(format!("{head}{payload}").as_bytes(), false)
    }

    fn json(&self, method: &str, path: &str, body: Option<&Json>, expect: u16) -> Json {
        let r = self.request(method, path, body);
        assert_eq!(r.status, expect, "{method} {path}: {}", r.body);
        Json::parse(&r.body).expect("JSON body")
    }

    fn submit(&self, name: &str, dataset: &str, scale: f64) -> usize {
        let job = Json::obj([
            ("name", Json::str(name)),
            ("dataset", Json::str(dataset)),
            ("seed", Json::num(20180416.0)),
            ("scale", Json::Num(scale)),
        ]);
        let r = self.json("POST", "/v1/jobs", Some(&job), 201);
        r.get("id").and_then(Json::as_usize).expect("submit id")
    }

    /// Blocks until the job is terminal; returns (fingerprint, status).
    fn wait(&self, id: usize) -> (String, String) {
        let r = self.json("GET", &format!("/v1/jobs/{id}?wait=true"), None, 200);
        let fingerprint = r
            .get("fingerprint")
            .and_then(Json::as_str)
            .expect("fingerprint")
            .to_string();
        let status = r
            .get("status")
            .and_then(Json::as_str)
            .expect("status")
            .to_string();
        (fingerprint, status)
    }

    fn shutdown(&self) {
        self.json("POST", "/v1/shutdown", None, 200);
    }

    /// Polls the job until it reaches `phase`.
    fn await_phase(&self, id: usize, phase: &str) {
        let t0 = Instant::now();
        loop {
            let r = self.json("GET", &format!("/v1/jobs/{id}"), None, 200);
            let got = r.get("phase").and_then(Json::as_str).unwrap().to_string();
            if got == phase {
                return;
            }
            assert!(got != "done", "job #{id} finished before {phase:?}");
            assert!(
                t0.elapsed() < Duration::from_secs(60),
                "job #{id} never reached {phase:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn serve_opts() -> ServeOptions {
    ServeOptions {
        slots: Some(2),
        threads: Some(3),
        ..ServeOptions::default()
    }
}

fn synthetic_spec(name: &str, kind: DatasetKind, scale: f64) -> JobSpec {
    JobSpec {
        name: name.into(),
        input: JobInput::Synthetic {
            kind,
            seed: 20180416,
            scale,
        },
        truth: None,
        theta: None,
        candidates_k: None,
        purge_blocks: None,
        timeout_ms: None,
        max_retries: None,
        persist: None,
    }
}

fn profile_name(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::Restaurant => "restaurant",
        DatasetKind::RexaDblp => "rexa",
        DatasetKind::BbcDbpedia => "bbc",
        DatasetKind::YagoImdb => "yago",
    }
}

/// Runs `body` against a live HTTP server and returns the fleet report
/// from its clean shutdown. A panicking `body` still shuts the server
/// down (with the right token) before the panic resumes, so a failed
/// assertion reports as a failure instead of wedging the scope join.
fn with_server<T>(
    options: HttpOptions,
    body: impl FnOnce(&Http) -> T,
) -> (minoaner::serve::ServeReport, T) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let token = options.auth_token.clone();
    let opts = serve_opts();
    std::thread::scope(|scope| {
        let server = scope.spawn(move || run_http(listener, &opts, options, |_| {}).unwrap());
        let client = Http { addr, token: None };
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&client)));
        let out = out.unwrap_or_else(|panic| {
            let mut head =
                String::from("POST /v1/shutdown HTTP/1.1\r\nHost: t\r\nConnection: close\r\n");
            if let Some(token) = &token {
                head += &format!("Authorization: Bearer {token}\r\n");
            }
            head += "\r\n";
            if let Ok(mut stream) = TcpStream::connect(addr) {
                let _ = stream.write_all(head.as_bytes());
                let _ = stream.read_to_end(&mut Vec::new());
            }
            std::panic::resume_unwind(panic);
        });
        (server.join().unwrap(), out)
    })
}

#[test]
fn http_jobs_are_bit_identical_to_batch_and_solo_runs() {
    let (report, fingerprints) = with_server(HttpOptions::default(), |http| {
        let ids: Vec<(usize, DatasetKind)> = DatasetKind::ALL
            .into_iter()
            .map(|kind| {
                (
                    http.submit(profile_name(kind), profile_name(kind), 0.08),
                    kind,
                )
            })
            .collect();
        let fps: Vec<String> = ids
            .into_iter()
            .map(|(id, kind)| {
                let (fp, status) = http.wait(id);
                assert_eq!(status, "ok", "{kind:?} failed over HTTP");
                fp
            })
            .collect();
        http.shutdown();
        fps
    });

    // The server's final fleet report carries the same fingerprints in
    // submission order.
    assert_eq!(report.jobs.len(), 4);
    for (fp, job) in fingerprints.iter().zip(&report.jobs) {
        assert_eq!(*fp, job.fingerprint(), "{}: wait vs report", job.name);
    }

    // Batch path: the same jobs as a manifest fleet.
    let manifest = Manifest {
        slots: 2,
        threads: 3,
        memory_budget_mib: 0,
        timeout_ms: 0,
        max_retries: 0,
        jobs: DatasetKind::ALL
            .into_iter()
            .map(|kind| synthetic_spec(profile_name(kind), kind, 0.08))
            .collect(),
    };
    let batch = run_batch(&manifest, &ServeOptions::default());

    // Solo path: each job alone on a sequential executor.
    for (i, kind) in DatasetKind::ALL.into_iter().enumerate() {
        let solo = run_batch(
            &Manifest {
                slots: 1,
                threads: 1,
                memory_budget_mib: 0,
                timeout_ms: 0,
                max_retries: 0,
                jobs: vec![synthetic_spec(profile_name(kind), kind, 0.08)],
            },
            &ServeOptions {
                slots: Some(1),
                threads: Some(1),
                executor: ExecutorKind::Sequential,
                ..ServeOptions::default()
            },
        );
        assert_eq!(
            fingerprints[i],
            batch.jobs[i].fingerprint(),
            "{kind:?}: HTTP vs batch"
        );
        assert_eq!(
            fingerprints[i],
            solo.jobs[0].fingerprint(),
            "{kind:?}: HTTP vs solo sequential"
        );
    }
}

#[test]
fn cancelling_a_running_job_over_http_spares_the_fleet() {
    let (report, ()) = with_server(HttpOptions::default(), |http| {
        let doomed = http.submit("doomed", "yago", 1.0);
        let quick = http.submit("quick", "restaurant", 0.1);
        http.await_phase(doomed, "running");
        let r = http.json("DELETE", &format!("/v1/jobs/{doomed}"), None, 200);
        assert_eq!(
            r.get("outcome").and_then(Json::as_str),
            Some("cancelling"),
            "the job was running, so the cancel must take the mid-run path"
        );
        let (_, status) = http.wait(doomed);
        assert_eq!(status, "cancelled", "running job unwound at a checkpoint");
        let (_, status) = http.wait(quick);
        assert_eq!(status, "ok", "other in-flight jobs are unaffected");
        http.shutdown();
    });
    assert_eq!(report.jobs.len(), 2);
    assert_eq!(report.jobs[0].status, JobStatus::Cancelled);
    assert!(report.jobs[1].status.is_ok());
    assert!(report.jobs[0].matches.is_empty(), "no partial output");
}

#[test]
fn metrics_are_parseable_prometheus_text() {
    let (_, ()) = with_server(HttpOptions::default(), |http| {
        let id = http.submit("one", "restaurant", 0.05);
        let (_, status) = http.wait(id);
        assert_eq!(status, "ok");
        let r = http.request("GET", "/v1/metrics", None);
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(
            r.head.contains("Content-Type: text/plain; version=0.0.4"),
            "{}",
            r.head
        );
        // Every non-comment line is `name[{labels}] value` with a
        // numeric value; the counts reflect the finished job.
        let mut samples = 0;
        for line in r.body.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("metric line without value: {line:?}"));
            assert!(name.starts_with("minoan_"), "{line}");
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
            samples += 1;
        }
        assert!(samples >= 15, "suspiciously few samples:\n{}", r.body);
        for needle in [
            "minoan_jobs_queued 0",
            "minoan_jobs_running 0",
            "minoan_jobs_done_total{status=\"ok\"} 1",
            "minoan_jobs_done_total{status=\"failed\"} 0",
            "minoan_threads_budget 3",
            "minoan_fleet_slots 2",
            "minoan_stage_seconds_total{stage=\"matching\"}",
            "minoan_estimated_bytes_total",
        ] {
            assert!(r.body.contains(needle), "missing {needle:?}:\n{}", r.body);
        }
        http.shutdown();
    });
}

#[test]
fn auth_rejects_missing_and_wrong_tokens_without_disturbing_jobs() {
    let options = HttpOptions {
        auth_token: Some("sesame-open".into()),
        ..HttpOptions::default()
    };
    let (report, ()) = with_server(options, |anon| {
        let authed = Http {
            addr: anon.addr,
            token: Some("sesame-open"),
        };
        // A job submitted with the right token…
        let id = authed.submit("guarded", "restaurant", 0.1);
        // …survives a barrage of unauthenticated and wrong-token
        // requests, all of which get 401 + WWW-Authenticate.
        for (client, what) in [
            (anon, "missing token"),
            (
                &Http {
                    addr: anon.addr,
                    token: Some("sesame-close"),
                },
                "wrong token",
            ),
            (
                &Http {
                    addr: anon.addr,
                    token: Some("sesame-ope"),
                },
                "prefix token",
            ),
        ] {
            for (method, path) in [
                ("GET", "/v1/jobs"),
                ("POST", "/v1/jobs"),
                ("GET", "/v1/metrics"),
                ("DELETE", "/v1/jobs/0"),
                ("POST", "/v1/shutdown"),
            ] {
                let r = client.request(method, path, None);
                assert_eq!(r.status, 401, "{what}: {method} {path} -> {}", r.body);
                assert!(
                    r.head.contains("WWW-Authenticate: Bearer"),
                    "{what}: {}",
                    r.head
                );
            }
        }
        let (_, status) = authed.wait(id);
        assert_eq!(status, "ok", "running job undisturbed by 401 traffic");
        authed.shutdown();
    });
    assert_eq!(report.jobs.len(), 1);
    assert!(report.jobs[0].status.is_ok());
}

#[test]
fn oversized_and_malformed_requests_get_clean_errors() {
    let (report, ()) = with_server(HttpOptions::default(), |http| {
        // A running job that every malformed request must leave alone.
        let id = http.submit("survivor", "restaurant", 0.15);

        // Request line over the limit -> 431.
        let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(10_000));
        assert_eq!(http.raw(long_path.as_bytes(), false).status, 431);

        // One huge header line -> 431.
        let big_header = format!(
            "GET /v1/jobs HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "y".repeat(10_000)
        );
        assert_eq!(http.raw(big_header.as_bytes(), false).status, 431);

        // Too many header fields -> 431.
        let mut many = String::from("GET /v1/jobs HTTP/1.1\r\n");
        for i in 0..70 {
            many += &format!("X-H{i}: v\r\n");
        }
        many += "\r\n";
        assert_eq!(http.raw(many.as_bytes(), false).status, 431);

        // Header section over the total limit (each line under the
        // per-line limit) -> 431.
        let mut fat = String::from("GET /v1/jobs HTTP/1.1\r\n");
        for i in 0..6 {
            fat += &format!("X-Fat{i}: {}\r\n", "z".repeat(7_000));
        }
        fat += "\r\n";
        assert_eq!(http.raw(fat.as_bytes(), false).status, 431);

        // Declared body over the limit -> 413, before any body bytes.
        let big_body = "POST /v1/jobs HTTP/1.1\r\nContent-Length: 9000000\r\n\r\n";
        assert_eq!(http.raw(big_body.as_bytes(), false).status, 413);

        // Unparseable content-length -> 400.
        let bad_len = "POST /v1/jobs HTTP/1.1\r\nContent-Length: abc\r\n\r\n";
        assert_eq!(http.raw(bad_len.as_bytes(), false).status, 400);

        // Truncated request line (client gave up mid-request) -> 400.
        assert_eq!(http.raw(b"GET /v1/jo", true).status, 400);

        // Body shorter than declared -> 400.
        let short_body = "POST /v1/jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"na";
        assert_eq!(http.raw(short_body.as_bytes(), true).status, 400);

        // Garbled request line -> 400.
        assert_eq!(http.raw(b"ONE-WORD\r\n\r\n", false).status, 400);

        // Unsupported HTTP version -> 505; chunked bodies -> 501.
        assert_eq!(
            http.raw(b"GET /v1/jobs HTTP/2.0\r\n\r\n", false).status,
            505
        );
        let chunked = "POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(http.raw(chunked.as_bytes(), false).status, 501);

        // Bad JSON and invalid UTF-8 bodies -> 400 with a message.
        let r = http.request("POST", "/v1/jobs", Some(&Json::str("not an object")));
        assert_eq!(r.status, 400, "{}", r.body);
        let mut invalid = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n".to_vec();
        invalid.extend_from_slice(&[0xff, 0xfe, 0xfd, 0xfc]);
        let r = http.raw(&invalid, false);
        assert_eq!(r.status, 400);
        assert!(r.body.contains("invalid UTF-8"), "{}", r.body);

        // Bad job ids, unknown ids, unknown paths, wrong methods.
        let r = http.request("GET", "/v1/jobs/banana", None);
        assert_eq!(r.status, 400, "{}", r.body);
        assert_eq!(http.request("GET", "/v1/jobs/99", None).status, 404);
        assert_eq!(http.request("DELETE", "/v1/jobs/99", None).status, 404);
        assert_eq!(http.request("GET", "/nope", None).status, 404);
        let r = http.request("PUT", "/v1/jobs", None);
        assert_eq!(r.status, 405, "{}", r.body);
        assert!(r.head.contains("Allow: GET, POST"), "{}", r.head);
        assert_eq!(http.request("DELETE", "/v1/metrics", None).status, 405);
        assert_eq!(http.request("GET", "/v1/shutdown", None).status, 405);

        // After all of that, the accept loop still serves and the job
        // still resolves.
        let (_, status) = http.wait(id);
        assert_eq!(status, "ok", "malformed traffic disturbed a running job");
        http.shutdown();
    });
    assert_eq!(report.jobs.len(), 1);
    assert!(report.jobs[0].status.is_ok());
}

/// The SSE tests share the process-global trace collector with every
/// other test in this binary, so the two of them must not run at the
/// same time: the flood test deliberately saturates subscribers, and a
/// concurrently-subscribed lifecycle test would be collateral damage.
static SSE_SERIAL: Mutex<()> = Mutex::new(());

/// A test-side `GET /v1/events` subscription: request sent, response
/// headers checked and consumed, frames read on demand.
struct Sse {
    stream: TcpStream,
    buffer: Vec<u8>,
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

impl Sse {
    fn open(addr: SocketAddr, query: &str) -> Sse {
        let mut stream = TcpStream::connect(addr).expect("connect events");
        let head =
            format!("GET /v1/events{query} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        stream
            .write_all(head.as_bytes())
            .expect("send events request");
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let mut sse = Sse {
            stream,
            buffer: Vec::new(),
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(at) = find(&sse.buffer, b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&sse.buffer[..at]).into_owned();
                assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                assert!(head.contains("text/event-stream"), "{head}");
                sse.buffer.drain(..at + 4);
                return sse;
            }
            assert!(sse.fill(), "events stream closed before headers");
            assert!(Instant::now() < deadline, "no events headers in time");
        }
    }

    /// Pulls more bytes off the socket; false on server close.
    fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 65536];
        match self.stream.read(&mut chunk) {
            Ok(0) => false,
            Ok(n) => {
                self.buffer.extend_from_slice(&chunk[..n]);
                true
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                true
            }
            Err(e) => panic!("events read: {e}"),
        }
    }

    /// Reads named frames (skipping keep-alive comments), feeding each
    /// to `stop`, until it returns true, the deadline passes, or the
    /// server closes the stream. Returns whether `stop` ever matched.
    fn read_until(&mut self, deadline: Instant, mut stop: impl FnMut(&str, &Json) -> bool) -> bool {
        loop {
            while let Some(end) = find(&self.buffer, b"\n\n") {
                let frame: Vec<u8> = self.buffer.drain(..end + 2).collect();
                let frame = String::from_utf8_lossy(&frame);
                let mut name = None;
                let mut data = None;
                for line in frame.lines() {
                    if let Some(rest) = line.strip_prefix("event: ") {
                        name = Some(rest.to_string());
                    } else if let Some(rest) = line.strip_prefix("data: ") {
                        data = Json::parse(rest).ok();
                    }
                }
                if let (Some(name), Some(data)) = (name, data) {
                    if stop(&name, &data) {
                        return true;
                    }
                }
            }
            if Instant::now() >= deadline || !self.fill() {
                return false;
            }
        }
    }
}

/// Watches one subscription until the named job's full lifecycle has
/// streamed past, and asserts the transitions arrive in order. The job
/// is identified by its (test-unique) name in the `job.queued` /
/// `job.running` details, and `job.done` by the running attempt's
/// trace ID — job numbers alone would collide across the other tests
/// in this binary, which share the process-global collector.
fn assert_lifecycle(sse: &mut Sse, label: &str, job_name: &str, deadline: Instant) {
    let tag = format!("name={job_name:?}");
    let mut seen: Vec<&'static str> = Vec::new();
    let mut trace = None;
    let done = sse.read_until(deadline, |name, data| {
        let detail = data.get("detail").and_then(Json::as_str).unwrap_or("");
        match name {
            "job.queued" if detail.contains(&tag) => seen.push("queued"),
            "job.running" if detail.contains(&tag) => {
                trace = data.get("trace").and_then(Json::as_usize);
                seen.push("running");
            }
            "job.done"
                if trace.is_some() && data.get("trace").and_then(Json::as_usize) == trace =>
            {
                seen.push("done");
                return true;
            }
            _ => {}
        }
        false
    });
    assert!(done, "{label}: no job.done for {job_name:?}; saw {seen:?}");
    assert_eq!(
        seen,
        ["queued", "running", "done"],
        "{label}: out-of-order lifecycle for {job_name:?}"
    );
}

/// Two concurrent subscribers both observe a job's full queued →
/// running → done lifecycle, in order, over independent connections.
#[test]
fn concurrent_sse_subscribers_both_observe_the_job_lifecycle() {
    let _serial = SSE_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (report, ()) = with_server(HttpOptions::default(), |http| {
        let mut first = Sse::open(http.addr, "?level=info");
        let mut second = Sse::open(http.addr, "?level=info");
        let id = http.submit("sse-both", "restaurant", 0.08);
        let (_, status) = http.wait(id);
        assert_eq!(status, "ok");
        let deadline = Instant::now() + Duration::from_secs(30);
        assert_lifecycle(&mut first, "first subscriber", "sse-both", deadline);
        assert_lifecycle(&mut second, "second subscriber", "sse-both", deadline);
        http.shutdown();
    });
    assert_eq!(report.jobs.len(), 1);
    assert!(report.jobs[0].status.is_ok());
}

/// A subscriber that stops reading is dropped by the server once its
/// socket backs up — visible to the surviving subscriber as a warn
/// event — while the scheduler and the healthy stream proceed
/// untouched, and the stalled connection gets closed.
#[test]
fn a_stalled_sse_subscriber_is_dropped_while_others_stream_on() {
    let _serial = SSE_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (report, ()) = with_server(HttpOptions::default(), |http| {
        let mut healthy = Sse::open(http.addr, "?level=info");
        let mut stalled = Sse::open(http.addr, "?level=info");

        // Flood the ring from a side thread; the stalled subscriber
        // never reads, so its socket fills and the server's bounded
        // write gives up on it. The healthy subscriber keeps draining.
        let stop = Arc::new(AtomicBool::new(false));
        let flooder = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let payload = "x".repeat(1024);
                for _ in 0..100_000 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    for _ in 0..64 {
                        minoaner::obs::trace::event(
                            minoaner::obs::Level::Info,
                            "test.flood",
                            payload.clone(),
                        );
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let deadline = Instant::now() + Duration::from_secs(60);
        let dropped = healthy.read_until(deadline, |name, _| name == "http.events");
        stop.store(true, Ordering::Relaxed);
        flooder.join().unwrap();
        assert!(dropped, "no drop warning reached the healthy subscriber");

        // The server closed the stalled connection: draining whatever
        // was buffered in its socket must end in EOF.
        let drain_deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if !stalled.fill() {
                break;
            }
            stalled.buffer.clear();
            assert!(
                Instant::now() < drain_deadline,
                "stalled subscriber never saw EOF"
            );
        }

        // The scheduler was never blocked, and the healthy stream still
        // delivers a fresh job's lifecycle end to end.
        let id = http.submit("post-stall", "restaurant", 0.05);
        let (_, status) = http.wait(id);
        assert_eq!(status, "ok");
        let deadline = Instant::now() + Duration::from_secs(30);
        assert_lifecycle(&mut healthy, "healthy subscriber", "post-stall", deadline);
        http.shutdown();
    });
    assert_eq!(report.jobs.len(), 1);
    assert!(report.jobs[0].status.is_ok());
}

#[test]
fn shutdown_cancel_mode_flips_queued_jobs_and_closes_the_connection() {
    let (report, ()) = with_server(HttpOptions::default(), |http| {
        // One heavy job occupies both listed profiles' worth of time;
        // the rest queue behind it (2 slots, so submit 4).
        for (name, scale) in [("a", 0.3), ("b", 0.3), ("c", 0.3), ("d", 0.3)] {
            http.submit(name, "restaurant", scale);
        }
        let body = Json::obj([("mode", Json::str("cancel"))]);
        let r = http.request("POST", "/v1/shutdown", Some(&body));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"mode\":\"cancel\""), "{}", r.body);
        // A shutdown response never leaves the connection open: framing
        // after the server winds down would be a hang, not a reply.
        assert!(r.head.contains("Connection: close"), "{}", r.head);
    });
    assert_eq!(report.jobs.len(), 4);
    // Every job is terminal; at least the tail of the queue was flipped
    // to Cancelled without running.
    assert!(report
        .jobs
        .iter()
        .all(|j| j.status == JobStatus::Cancelled || j.status.is_ok()));
    assert!(report.jobs.iter().any(|j| j.status == JobStatus::Cancelled));
}
