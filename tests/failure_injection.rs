//! Failure-injection and edge-case tests: the pipeline must degrade
//! gracefully, never panic, on degenerate or corrupted inputs — and a
//! poisoned job in a serving fleet must fail alone.

use minoaner::core::{build_blocks, MinoanConfig, MinoanEr};
use minoaner::kb::{parse, KbBuilder, KbPair};
use minoaner::serve::{run_batch, JobInput, JobSpec, JobStatus, Manifest, ServeOptions};

#[test]
fn empty_kbs() {
    let pair = KbPair::new(KbBuilder::new("a").finish(), KbBuilder::new("b").finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert!(out.matching.is_empty());
}

#[test]
fn one_empty_side() {
    let mut a = KbBuilder::new("a");
    a.add_literal("a:1", "name", "something");
    let pair = KbPair::new(a.finish(), KbBuilder::new("b").finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert!(out.matching.is_empty());
}

#[test]
fn entities_without_literals() {
    let mut a = KbBuilder::new("a");
    a.add_uri("a:1", "knows", "a:2");
    a.declare_entity("a:2");
    let mut b = KbBuilder::new("b");
    b.add_uri("b:1", "knows", "b:2");
    b.declare_entity("b:2");
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    // Nothing to match on, but nothing crashes either.
    assert!(out.matching.is_empty());
}

#[test]
fn kb_without_relations_disables_neighbor_evidence_gracefully() {
    let mut a = KbBuilder::new("a");
    let mut b = KbBuilder::new("b");
    for i in 0..20 {
        a.add_literal(
            &format!("a:{i}"),
            "name",
            &format!("distinct name number {i}"),
        );
        b.add_literal(
            &format!("b:{i}"),
            "label",
            &format!("distinct name number {i}"),
        );
    }
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 20);
}

#[test]
fn self_loops_and_dangling_uris() {
    let mut a = KbBuilder::new("a");
    a.add_uri("a:1", "rel", "a:1"); // self-loop
    a.add_uri("a:1", "rel", "a:missing"); // dangling -> literal
    a.add_literal("a:1", "name", "weird entity");
    let mut b = KbBuilder::new("b");
    b.add_literal("b:1", "name", "weird entity");
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 1);
}

#[test]
fn unicode_and_long_values() {
    let mut a = KbBuilder::new("a");
    let long = "πολύ ".repeat(5000);
    a.add_literal("a:1", "name", &long);
    a.add_literal("a:1", "emoji", "🏛️ ruins");
    let mut b = KbBuilder::new("b");
    b.add_literal("b:1", "label", &long);
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 1);
}

#[test]
fn corrupted_ntriples_report_line_numbers() {
    let text = "<ok> <p> \"v\" .\nthis line is garbage\n";
    let err = parse::parse_ntriples("x", text).unwrap_err();
    assert_eq!(err.line, 2);
    assert!(!err.to_string().is_empty());
}

#[test]
fn duplicate_triples_are_harmless() {
    let mut a = KbBuilder::new("a");
    for _ in 0..10 {
        a.add_literal("a:1", "name", "same triple");
    }
    let mut b = KbBuilder::new("b");
    b.add_literal("b:1", "name", "same triple");
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 1);
}

#[test]
fn extreme_configs_do_not_panic() {
    let mut a = KbBuilder::new("a");
    let mut b = KbBuilder::new("b");
    for i in 0..30 {
        a.add_literal(
            &format!("a:{i}"),
            "name",
            &format!("entity {i} shared words"),
        );
        b.add_literal(
            &format!("b:{i}"),
            "name",
            &format!("entity {i} shared words"),
        );
    }
    let pair = KbPair::new(a.finish(), b.finish());
    for config in [
        MinoanConfig {
            candidates_k: 1,
            ..Default::default()
        },
        MinoanConfig {
            candidates_k: 10_000,
            ..Default::default()
        },
        MinoanConfig {
            theta: 0.001,
            ..Default::default()
        },
        MinoanConfig {
            theta: 0.999,
            ..Default::default()
        },
        MinoanConfig {
            top_relations_n: 100,
            name_attrs_k: 50,
            ..Default::default()
        },
    ] {
        let out = MinoanEr::new(config).unwrap().run(&pair);
        assert!(!out.matching.is_empty());
    }
}

/// A scratch directory that cleans up after itself.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("minoan-failure-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn file(&self, name: &str, content: &str) -> std::path::PathBuf {
        let path = self.0.join(name);
        std::fs::write(&path, content).expect("write scratch file");
        path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A tiny two-sided TSV pair whose entities match on a distinctive name.
fn tsv_pair(tag: usize) -> (String, String) {
    let mut a = String::new();
    let mut b = String::new();
    for i in 0..8 {
        a.push_str(&format!("a:{i}\tname\tlit\tspecimen{tag}x{i} artifact\n"));
        b.push_str(&format!("b:{i}\tlabel\tlit\tspecimen{tag}x{i} artifact\n"));
    }
    (a, b)
}

#[test]
fn corrupt_job_fails_alone_in_a_fleet() {
    let scratch = ScratchDir::new("fleet");
    let mut jobs = Vec::new();
    for tag in 0..3 {
        let (a, b) = tsv_pair(tag);
        jobs.push(JobSpec {
            name: format!("good-{tag}"),
            input: JobInput::Files {
                first: scratch.file(&format!("a{tag}.tsv"), &a),
                second: scratch.file(&format!("b{tag}.tsv"), &b),
            },
            truth: None,
            theta: None,
            candidates_k: None,
            purge_blocks: None,
        });
    }
    // A truncated N-Triples file: the second line is cut mid-triple.
    let corrupt = scratch.file(
        "corrupt.nt",
        "<x:1> <name> \"fine\" .\n<x:2> <name> \"truncat",
    );
    let (_, good_side) = tsv_pair(9);
    jobs.insert(
        1, // poison in the middle of the queue, not at the edges
        JobSpec {
            name: "poisoned".into(),
            input: JobInput::Files {
                first: corrupt,
                second: scratch.file("ok.tsv", &good_side),
            },
            truth: None,
            theta: None,
            candidates_k: None,
            purge_blocks: None,
        },
    );
    let manifest = Manifest {
        slots: 2,
        threads: 2,
        memory_budget_mib: 0,
        jobs,
    };
    let report = run_batch(&manifest, &ServeOptions::default());

    // The poisoned job failed with a parse error naming the line…
    let poisoned = report.jobs.iter().find(|j| j.name == "poisoned").unwrap();
    let JobStatus::Failed(err) = &poisoned.status else {
        panic!("poisoned job should fail, got {:?}", poisoned.status);
    };
    assert!(err.contains("corrupt.nt"), "error names the file: {err}");
    assert!(poisoned.matches.is_empty());

    // …while every other job completed with its full matching.
    for job in report.jobs.iter().filter(|j| j.name != "poisoned") {
        assert!(job.status.is_ok(), "{}: {:?}", job.name, job.status);
        assert_eq!(job.matches.len(), 8, "{} lost matches", job.name);
    }
    assert_eq!(report.failed_count(), 1);
}

#[test]
fn blocking_artifacts_are_consistent_under_no_purging() {
    let mut a = KbBuilder::new("a");
    let mut b = KbBuilder::new("b");
    for i in 0..50 {
        a.add_literal(&format!("a:{i}"), "name", &format!("stopword entity {i}"));
        b.add_literal(&format!("b:{i}"), "name", &format!("stopword entity {i}"));
    }
    let pair = KbPair::new(a.finish(), b.finish());
    let cfg = MinoanConfig {
        purge_blocks: false,
        ..Default::default()
    };
    let art = build_blocks(&pair, &cfg);
    assert!(art.purge.is_none());
    // "stopword" and "entity" blocks are 50x50 each.
    assert!(art.token_blocks.total_comparisons() >= 2 * 50 * 50);
}
