//! Quickstart: build two tiny KBs by hand and resolve them.
//!
//! Run with `cargo run --example quickstart`.

use minoaner::core::MinoanEr;
use minoaner::kb::{KbBuilder, KbPair};

fn main() {
    // First KB: a tourist guide.
    let mut guide = KbBuilder::new("guide");
    guide.add_literal("g:knossos", "name", "Palace of Knossos");
    guide.add_literal(
        "g:knossos",
        "description",
        "minoan bronze age palace near heraklion",
    );
    guide.add_uri("g:knossos", "locatedIn", "g:heraklion");
    guide.add_literal("g:heraklion", "name", "Heraklion");
    guide.add_literal("g:phaistos", "name", "Phaistos");
    guide.add_literal(
        "g:phaistos",
        "description",
        "minoan palace of the famous disc",
    );

    // Second KB: an encyclopedia with a different schema.
    let mut wiki = KbBuilder::new("wiki");
    wiki.add_literal("w:q173527", "label", "Knossos Palace");
    wiki.add_literal(
        "w:q173527",
        "abstract",
        "largest bronze age archaeological site on crete",
    );
    wiki.add_uri("w:q173527", "municipality", "w:q160544");
    wiki.add_literal("w:q160544", "label", "Heraklion");
    wiki.add_literal("w:q192797", "label", "Phaistos");
    wiki.add_literal(
        "w:q192797",
        "abstract",
        "minoan site where the phaistos disc was found",
    );

    let pair = KbPair::new(guide.finish(), wiki.finish());

    // Resolve with the paper's default configuration: no schema
    // alignment, no thresholds to tune, no iterations.
    let out = MinoanEr::with_defaults().run(&pair);

    println!("found {} matches:", out.matching.len());
    for (e1, e2) in out.matching.iter() {
        println!(
            "  {}  <=>  {}",
            pair.first.entity_uri(e1),
            pair.second.entity_uri(e2)
        );
    }
    println!(
        "(H1 name matches: {}, H2 value matches: {}, H3 rank-aggregation matches: {})",
        out.report.h1_matches, out.report.h2_matches, out.report.h3_matches
    );
}
