//! Attribute and relation importance from data statistics.
//!
//! MinoanER never asks a domain expert which attribute is the "name" or
//! which relation matters. Instead, the *importance* of a predicate `p`
//! in KB `E` is the harmonic mean of
//!
//! - **support**: the portion of entities of `E` that contain `p`, and
//! - **discriminability**: the ratio of distinct objects of `p` to the
//!   entities containing `p`.
//!
//! The `k` most important literal attributes provide entity *names*
//! (H1); the `N` most important relations define `topNneighbors` (H3).

use minoan_exec::Executor;
use minoan_kb::{AttrId, EntityId, FxHashMap, FxHashSet, KnowledgeBase, Value};

/// Importance of one predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Importance {
    /// The predicate.
    pub attr: AttrId,
    /// Portion of entities containing the predicate.
    pub support: f64,
    /// Distinct objects per containing entity.
    pub discriminability: f64,
}

impl Importance {
    /// Harmonic mean of support and discriminability.
    pub fn score(&self) -> f64 {
        let (s, d) = (self.support, self.discriminability);
        if s + d == 0.0 {
            0.0
        } else {
            2.0 * s * d / (s + d)
        }
    }
}

fn harmonic_rank(mut items: Vec<Importance>) -> Vec<Importance> {
    // Deterministic order: score descending, attribute id ascending.
    items.sort_by(|a, b| {
        b.score()
            .partial_cmp(&a.score())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.attr.cmp(&b.attr))
    });
    items
}

/// Per-part accumulator of one importance pass: attribute containment
/// counts plus distinct-value sets. Counts and set unions are
/// order-independent, so merging per-part accumulators yields exactly
/// the sequential aggregates (and therefore bit-identical scores).
struct ImportancePart<V> {
    containing: Vec<usize>,
    distinct: Vec<FxHashSet<V>>,
}

/// One data-parallel pass over an entity range: `value_of` projects each
/// statement onto the value kind being ranked (literal text or linked
/// entity), or `None` to skip it.
fn importance_pass<V, F>(kb: &KnowledgeBase, exec: &Executor, value_of: F) -> ImportancePart<V>
where
    V: std::hash::Hash + Eq + Send,
    F: Fn(&Value) -> Option<V> + Sync,
{
    let n_attrs = kb.attr_count();
    let parts = exec.map_parts(kb.entity_count(), |range| {
        let mut containing = vec![0usize; n_attrs];
        let mut distinct: Vec<FxHashSet<V>> = (0..n_attrs).map(|_| FxHashSet::default()).collect();
        let mut seen: FxHashSet<AttrId> = FxHashSet::default();
        for e in range {
            seen.clear();
            for s in kb.statements(EntityId(e as u32)) {
                if let Some(v) = value_of(&s.value) {
                    if seen.insert(s.attr) {
                        containing[s.attr.index()] += 1;
                    }
                    distinct[s.attr.index()].insert(v);
                }
            }
        }
        ImportancePart {
            containing,
            distinct,
        }
    });
    let mut merged = ImportancePart {
        containing: vec![0usize; n_attrs],
        distinct: (0..n_attrs).map(|_| FxHashSet::default()).collect(),
    };
    for part in parts {
        for (total, c) in merged.containing.iter_mut().zip(part.containing) {
            *total += c;
        }
        for (set, partial) in merged.distinct.iter_mut().zip(part.distinct) {
            if set.is_empty() {
                *set = partial;
            } else {
                set.extend(partial);
            }
        }
    }
    merged
}

fn rank_pass<V>(kb: &KnowledgeBase, pass: ImportancePart<V>) -> Vec<Importance> {
    let n = kb.entity_count();
    let items = (0..kb.attr_count())
        .filter(|&i| pass.containing[i] > 0)
        .map(|i| Importance {
            attr: AttrId(i as u32),
            support: pass.containing[i] as f64 / n as f64,
            discriminability: pass.distinct[i].len() as f64 / pass.containing[i] as f64,
        })
        .collect();
    harmonic_rank(items)
}

/// Ranks the *literal-valued* attributes of `kb` by importance,
/// descending. Attributes with no literal values (pure relations) are
/// excluded: names are literal strings.
pub fn attribute_importance(kb: &KnowledgeBase) -> Vec<Importance> {
    attribute_importance_with(kb, &Executor::sequential())
}

/// [`attribute_importance`] on `exec`; bit-identical for any thread
/// count (all aggregates are integers, merged order-independently).
pub fn attribute_importance_with(kb: &KnowledgeBase, exec: &Executor) -> Vec<Importance> {
    if kb.entity_count() == 0 {
        return Vec::new();
    }
    let pass = importance_pass(kb, exec, |v| match v {
        Value::Literal(l) => Some(l.clone()),
        Value::Entity(_) => None,
    });
    rank_pass(kb, pass)
}

/// Ranks the *relations* (entity-valued attributes) of `kb` by
/// importance, descending.
pub fn relation_importance(kb: &KnowledgeBase) -> Vec<Importance> {
    relation_importance_with(kb, &Executor::sequential())
}

/// [`relation_importance`] on `exec`; bit-identical for any thread count.
pub fn relation_importance_with(kb: &KnowledgeBase, exec: &Executor) -> Vec<Importance> {
    if kb.entity_count() == 0 {
        return Vec::new();
    }
    let pass = importance_pass(kb, exec, |v| match v {
        Value::Literal(_) => None,
        Value::Entity(o) => Some(*o),
    });
    rank_pass(kb, pass)
}

/// Extracts the name strings of every entity: the literal values of the
/// `k` most important attributes.
pub fn entity_names(kb: &KnowledgeBase, k: usize) -> Vec<Vec<String>> {
    entity_names_with(kb, k, &Executor::sequential())
}

/// [`entity_names`] on `exec`: the importance ranking and the per-entity
/// extraction both fan out; partials merge in entity order.
pub fn entity_names_with(kb: &KnowledgeBase, k: usize, exec: &Executor) -> Vec<Vec<String>> {
    let ranked = attribute_importance_with(kb, exec);
    let name_attrs: FxHashSet<AttrId> = ranked.iter().take(k).map(|i| i.attr).collect();
    exec.map_range(kb.entity_count(), |e| {
        let mut names = Vec::new();
        for s in kb.statements(EntityId(e as u32)) {
            if name_attrs.contains(&s.attr) {
                if let Value::Literal(l) = &s.value {
                    names.push(l.to_string());
                }
            }
        }
        names
    })
}

/// Computes `topNneighbors(e)` for every entity: the neighbors (both
/// directions, as the paper's datasets use in- and out-neighbors)
/// connected through one of the `n` most important relations, capped at
/// `cap` neighbors per entity for robustness against hubs.
pub fn top_neighbors(kb: &KnowledgeBase, n: usize, cap: usize) -> Vec<Vec<EntityId>> {
    top_neighbors_with(kb, n, cap, &Executor::sequential())
}

/// [`top_neighbors`] on `exec`: a pure per-entity map, fanned out in
/// entity order.
pub fn top_neighbors_with(
    kb: &KnowledgeBase,
    n: usize,
    cap: usize,
    exec: &Executor,
) -> Vec<Vec<EntityId>> {
    let ranked = relation_importance_with(kb, exec);
    let top_rel: FxHashMap<AttrId, usize> = ranked
        .iter()
        .take(n)
        .enumerate()
        .map(|(rank, i)| (i.attr, rank))
        .collect();
    exec.map_range(kb.entity_count(), |e| {
        let e = EntityId(e as u32);
        // Collect (relation rank, neighbor) via top relations, both
        // directions; order by relation rank then id for determinism.
        let mut nb: Vec<(usize, EntityId)> = kb
            .edges(e)
            .filter_map(|edge| top_rel.get(&edge.relation).map(|&r| (r, edge.neighbor)))
            .collect();
        nb.sort_unstable();
        nb.dedup_by_key(|&mut (_, e)| e);
        let mut out: Vec<EntityId> = nb.into_iter().map(|(_, e)| e).collect();
        // dedup_by_key only removes consecutive repeats of the same
        // neighbor; a neighbor reachable via two relations appears
        // twice with different ranks, so dedup globally.
        let mut seen = FxHashSet::default();
        out.retain(|e| seen.insert(*e));
        out.truncate(cap);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_kb::KbBuilder;

    /// A KB where `name` is clearly the most distinctive attribute:
    /// full support, all-distinct values; `type` has full support but one
    /// value; `phone` has half support, distinct values.
    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new("t");
        for i in 0..4 {
            let s = format!("e:{i}");
            b.add_literal(&s, "name", &format!("entity number {i}"));
            b.add_literal(&s, "type", "Restaurant");
            if i % 2 == 0 {
                b.add_literal(&s, "phone", &format!("555-000{i}"));
            }
        }
        b.finish()
    }

    #[test]
    fn importance_prefers_distinctive_high_support_attributes() {
        let ranked = attribute_importance(&kb());
        let kb = kb();
        let names: Vec<&str> = ranked.iter().map(|i| kb.attr_name(i.attr)).collect();
        assert_eq!(names[0], "name");
        // name: support 1, discriminability 1 -> score 1.
        assert!((ranked[0].score() - 1.0).abs() < 1e-12);
        // type: support 1, discriminability 1/4 -> harmonic mean 0.4.
        let type_imp = ranked
            .iter()
            .find(|i| kb.attr_name(i.attr) == "type")
            .unwrap();
        assert!((type_imp.score() - 0.4).abs() < 1e-12);
        // phone: support 0.5, discriminability 1 -> 2/3.
        let phone = ranked
            .iter()
            .find(|i| kb.attr_name(i.attr) == "phone")
            .unwrap();
        assert!((phone.score() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(names[1], "phone");
    }

    #[test]
    fn entity_names_take_top_k_attribute_values() {
        let names = entity_names(&kb(), 1);
        assert_eq!(names[0], vec!["entity number 0"]);
        let names2 = entity_names(&kb(), 2);
        assert_eq!(names2[0], vec!["entity number 0", "555-0000"]);
        assert_eq!(names2[1], vec!["entity number 1"]);
    }

    #[test]
    fn relations_are_ranked_separately_from_attributes() {
        let mut b = KbBuilder::new("t");
        for i in 0..4 {
            let s = format!("m:{i}");
            b.add_literal(&s, "title", &format!("movie {i}"));
            // directedBy: all movies point at the same director.
            b.add_uri(&s, "directedBy", "p:0");
            // starring: each movie has a distinct lead.
            b.add_uri(&s, "starring", &format!("p:{}", i + 1));
        }
        for i in 0..6 {
            b.add_literal(&format!("p:{i}"), "title", &format!("person {i}"));
        }
        let kb = b.finish();
        let rels = relation_importance(&kb);
        assert_eq!(rels.len(), 2);
        assert_eq!(kb.attr_name(rels[0].attr), "starring");
        assert!(rels[0].score() > rels[1].score());
        // Attribute importance must not contain relations.
        let attrs = attribute_importance(&kb);
        assert!(attrs.iter().all(|i| kb.attr_name(i.attr) == "title"));
    }

    #[test]
    fn top_neighbors_follow_important_relations_both_directions() {
        let mut b = KbBuilder::new("t");
        b.add_literal("m:0", "title", "movie");
        b.add_uri("m:0", "starring", "p:1");
        b.add_uri("m:0", "starring", "p:2");
        b.add_literal("p:1", "name", "actor one");
        b.add_literal("p:2", "name", "actor two");
        let kb = b.finish();
        let tn = top_neighbors(&kb, 1, 32);
        let m0 = kb.entity_by_uri("m:0").unwrap();
        let p1 = kb.entity_by_uri("p:1").unwrap();
        assert_eq!(tn[m0.index()].len(), 2);
        // p:1 sees m:0 through the incoming edge.
        assert_eq!(tn[p1.index()], vec![m0]);
    }

    #[test]
    fn top_neighbors_respects_n_and_cap() {
        let mut b = KbBuilder::new("t");
        // rel_a is more important (distinct objects); rel_b all same target.
        for i in 0..3 {
            let s = format!("e:{i}");
            b.add_uri(&s, "rel_a", &format!("x:{i}"));
            b.add_uri(&s, "rel_b", "y:0");
        }
        for i in 0..3 {
            b.declare_entity(&format!("x:{i}"));
        }
        b.declare_entity("y:0");
        let kb = b.finish();
        let tn = top_neighbors(&kb, 1, 32);
        let e0 = kb.entity_by_uri("e:0").unwrap();
        let x0 = kb.entity_by_uri("x:0").unwrap();
        assert_eq!(tn[e0.index()], vec![x0], "only rel_a counts with N=1");
        let tn2 = top_neighbors(&kb, 2, 32);
        assert_eq!(tn2[e0.index()].len(), 2, "N=2 adds rel_b's neighbor");
        let capped = top_neighbors(&kb, 2, 1);
        assert_eq!(capped[e0.index()].len(), 1);
    }

    #[test]
    fn parallel_importance_is_bit_identical_to_sequential() {
        use minoan_exec::ExecutorKind;
        let mut b = KbBuilder::new("t");
        for i in 0..60 {
            let s = format!("e:{i}");
            b.add_literal(&s, "name", &format!("entity {}", i % 13));
            b.add_literal(&s, "type", "Thing");
            if i % 2 == 0 {
                b.add_uri(&s, "rel_a", &format!("e:{}", (i + 1) % 60));
            }
            if i % 3 == 0 {
                b.add_uri(&s, "rel_b", "e:0");
            }
        }
        let kb = b.finish();
        let seq_attr = attribute_importance(&kb);
        let seq_rel = relation_importance(&kb);
        let seq_names = entity_names(&kb, 2);
        let seq_tn = top_neighbors(&kb, 2, 8);
        for threads in [2, 3, 7] {
            let exec = Executor::new(ExecutorKind::Rayon, threads);
            assert_eq!(seq_attr, attribute_importance_with(&kb, &exec));
            assert_eq!(seq_rel, relation_importance_with(&kb, &exec));
            assert_eq!(seq_names, entity_names_with(&kb, 2, &exec));
            assert_eq!(seq_tn, top_neighbors_with(&kb, 2, 8, &exec));
        }
    }

    #[test]
    fn empty_kb_yields_empty_rankings() {
        let kb = KbBuilder::new("e").finish();
        assert!(attribute_importance(&kb).is_empty());
        assert!(relation_importance(&kb).is_empty());
        assert!(entity_names(&kb, 2).is_empty());
        assert!(top_neighbors(&kb, 3, 32).is_empty());
    }

    #[test]
    fn importance_tie_breaks_by_attr_id() {
        let mut b = KbBuilder::new("t");
        b.add_literal("e:0", "a1", "x");
        b.add_literal("e:0", "a2", "y");
        let kb = b.finish();
        let ranked = attribute_importance(&kb);
        assert_eq!(ranked[0].attr, AttrId(0));
        assert_eq!(ranked[1].attr, AttrId(1));
    }
}
