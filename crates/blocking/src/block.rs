//! Block collections.
//!
//! A *block* groups entities that share a blocking key (a token for `BT`,
//! an entire name for `BN`). Only entities inside the same block are ever
//! compared, which is what makes ER sub-quadratic. Blocks here are
//! *bilateral*: they keep the entities of each KB side separate, and a
//! block's comparison cardinality is `|firsts| · |seconds|`.

use minoan_kb::{BlockId, Csr, EntityId, FxHashSet, KbSide};

/// What a block collection was keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Token Blocking (`BT`): one block per shared token.
    Token,
    /// Name Blocking (`BN`): one block per distinctive entity name.
    Name,
}

/// One bilateral block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The blocking key id (a `TokenId` value for token blocks, a name
    /// interner id for name blocks).
    pub key: u32,
    /// Entities of the first KB carrying the key.
    pub firsts: Vec<EntityId>,
    /// Entities of the second KB carrying the key.
    pub seconds: Vec<EntityId>,
}

impl Block {
    /// The block's comparison cardinality `|firsts| · |seconds|`.
    pub fn comparisons(&self) -> u64 {
        self.firsts.len() as u64 * self.seconds.len() as u64
    }

    /// Total block assignments (entities placed in this block).
    pub fn assignments(&self) -> u64 {
        (self.firsts.len() + self.seconds.len()) as u64
    }

    /// Entities of the given side.
    pub fn side(&self, side: KbSide) -> &[EntityId] {
        match side {
            KbSide::First => &self.firsts,
            KbSide::Second => &self.seconds,
        }
    }
}

/// An immutable collection of bilateral blocks, with a per-entity index.
#[derive(Debug, Clone)]
pub struct BlockCollection {
    kind: BlockKind,
    blocks: Vec<Block>,
    /// Blocks containing each first-KB entity (CSR: one flat buffer).
    first_index: Csr<BlockId>,
    /// Blocks containing each second-KB entity (CSR: one flat buffer).
    second_index: Csr<BlockId>,
}

/// Inverts `blocks` into a per-entity CSR of containing block ids for
/// one side: counting pass, prefix sum, fill pass. Row contents are in
/// ascending block-id order because blocks are scanned in order.
fn entity_index(blocks: &[Block], side: KbSide, n: usize) -> Csr<BlockId> {
    let mut lens = vec![0usize; n];
    for b in blocks {
        for e in b.side(side) {
            lens[e.index()] += 1;
        }
    }
    let total = lens.iter().sum();
    let mut cursors = minoan_kb::csr::offsets_from_lens(&lens);
    let mut items = vec![BlockId(0); total];
    for (i, b) in blocks.iter().enumerate() {
        let id = BlockId(i as u32);
        for e in b.side(side) {
            items[cursors[e.index()]] = id;
            cursors[e.index()] += 1;
        }
    }
    Csr::from_lens_and_items(&lens, items)
}

impl BlockCollection {
    /// Builds a collection from blocks, indexing entities of KBs with
    /// `n_first`/`n_second` entities. Blocks with an empty side are kept
    /// out of the comparison structure by their zero cardinality but are
    /// normally filtered by the builders before this point.
    pub fn new(kind: BlockKind, blocks: Vec<Block>, n_first: usize, n_second: usize) -> Self {
        let first_index = entity_index(&blocks, KbSide::First, n_first);
        let second_index = entity_index(&blocks, KbSide::Second, n_second);
        Self {
            kind,
            blocks,
            first_index,
            second_index,
        }
    }

    /// The collection kind.
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    /// Number of blocks (the paper's `|B|`).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// A block by id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Total comparison cardinality (the paper's `||B||`).
    pub fn total_comparisons(&self) -> u64 {
        self.blocks.iter().map(Block::comparisons).sum()
    }

    /// Total block assignments (`BC` in purging terms).
    pub fn total_assignments(&self) -> u64 {
        self.blocks.iter().map(Block::assignments).sum()
    }

    /// The blocks containing entity `e` of `side`.
    pub fn blocks_of(&self, side: KbSide, e: EntityId) -> &[BlockId] {
        match side {
            KbSide::First => self.first_index.row(e.index()),
            KbSide::Second => self.second_index.row(e.index()),
        }
    }

    /// Number of indexed entities on `side`.
    pub fn entity_count(&self, side: KbSide) -> usize {
        match side {
            KbSide::First => self.first_index.rows(),
            KbSide::Second => self.second_index.rows(),
        }
    }

    /// The distinct entities of the *other* side co-occurring with `e` in
    /// at least one block (the candidate set of `e`).
    pub fn co_occurring(&self, side: KbSide, e: EntityId) -> Vec<EntityId> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for &bid in self.blocks_of(side, e) {
            for &other in self.block(bid).side(side.other()) {
                if seen.insert(other) {
                    out.push(other);
                }
            }
        }
        out
    }

    /// Iterates every distinct candidate pair `(e1, e2)` of the
    /// collection exactly once.
    pub fn distinct_pairs(&self) -> Vec<(EntityId, EntityId)> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for b in &self.blocks {
            for &e1 in &b.firsts {
                for &e2 in &b.seconds {
                    if seen.insert((e1, e2)) {
                        out.push((e1, e2));
                    }
                }
            }
        }
        out
    }

    /// Whether a specific pair co-occurs in at least one block.
    pub fn pair_co_occurs(&self, e1: EntityId, e2: EntityId) -> bool {
        let r1 = self.first_index.row(e1.index());
        let r2 = self.second_index.row(e2.index());
        let (short, needle, side) = if r1.len() <= r2.len() {
            (r1, e2, KbSide::Second)
        } else {
            (r2, e1, KbSide::First)
        };
        short
            .iter()
            .any(|&bid| self.block(bid).side(side).contains(&needle))
    }

    /// Removes blocks not satisfying `keep`, rebuilding the index.
    pub fn filter_blocks(&self, mut keep: impl FnMut(&Block) -> bool) -> BlockCollection {
        let blocks: Vec<Block> = self.blocks.iter().filter(|b| keep(b)).cloned().collect();
        BlockCollection::new(
            self.kind,
            blocks,
            self.first_index.rows(),
            self.second_index.rows(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn sample() -> BlockCollection {
        // Block 0: {0,1} x {0}; Block 1: {1} x {0,1}
        let blocks = vec![
            Block {
                key: 0,
                firsts: vec![e(0), e(1)],
                seconds: vec![e(0)],
            },
            Block {
                key: 1,
                firsts: vec![e(1)],
                seconds: vec![e(0), e(1)],
            },
        ];
        BlockCollection::new(BlockKind::Token, blocks, 2, 2)
    }

    #[test]
    fn cardinalities() {
        let c = sample();
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_comparisons(), 2 + 2);
        assert_eq!(c.total_assignments(), 3 + 3);
        assert_eq!(c.block(BlockId(0)).comparisons(), 2);
    }

    #[test]
    fn index_is_consistent() {
        let c = sample();
        assert_eq!(c.blocks_of(KbSide::First, e(0)), &[BlockId(0)]);
        assert_eq!(c.blocks_of(KbSide::First, e(1)), &[BlockId(0), BlockId(1)]);
        assert_eq!(c.blocks_of(KbSide::Second, e(0)), &[BlockId(0), BlockId(1)]);
    }

    #[test]
    fn co_occurring_is_deduplicated() {
        let c = sample();
        let cand = c.co_occurring(KbSide::First, e(1));
        assert_eq!(cand.len(), 2);
        assert!(cand.contains(&e(0)) && cand.contains(&e(1)));
        let cand = c.co_occurring(KbSide::Second, e(0));
        assert_eq!(cand.len(), 2);
    }

    #[test]
    fn distinct_pairs_deduplicates_cross_block_repeats() {
        let c = sample();
        let pairs = c.distinct_pairs();
        // (1,0) occurs in both blocks but is listed once.
        assert_eq!(pairs.len(), 3);
        assert_eq!(
            pairs
                .iter()
                .filter(|&&(a, b)| a == e(1) && b == e(0))
                .count(),
            1
        );
    }

    #[test]
    fn pair_co_occurrence_checks() {
        let c = sample();
        assert!(c.pair_co_occurs(e(0), e(0)));
        assert!(c.pair_co_occurs(e(1), e(1)));
        assert!(!c.pair_co_occurs(e(0), e(1)));
    }

    #[test]
    fn filter_blocks_rebuilds_index() {
        let c = sample().filter_blocks(|b| b.key == 1);
        assert_eq!(c.len(), 1);
        assert!(c.blocks_of(KbSide::First, e(0)).is_empty());
        assert_eq!(c.blocks_of(KbSide::First, e(1)), &[BlockId(0)]);
        assert_eq!(c.total_comparisons(), 2);
    }

    #[test]
    fn empty_collection() {
        let c = BlockCollection::new(BlockKind::Name, vec![], 0, 0);
        assert!(c.is_empty());
        assert_eq!(c.total_comparisons(), 0);
        assert!(c.distinct_pairs().is_empty());
    }
}
