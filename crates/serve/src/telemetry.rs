//! Process-wide latency histograms of the serving layer.
//!
//! Each histogram is a static [`minoan_obs::hist::Histogram`]
//! (registry-free: the owner holds it, `GET /v1/metrics` renders it).
//! Buckets are power-of-two microseconds; recording is three relaxed
//! atomic adds, so the hot paths (match queries, HTTP dispatch, the
//! scheduler's claim loop) observe without contention.

use minoan_core::Timings;
use minoan_obs::hist::Histogram;

/// End-to-end `GET /v1/indexes/{id}/match` latency (registry load +
/// artifact query), observed by the shared intake layer for both
/// front-ends.
pub static MATCH_QUERY: Histogram = Histogram::new();

/// HTTP request duration: read-complete to response-written, every
/// endpoint (SSE streams excluded — they live until disconnect).
pub static HTTP_REQUEST: Histogram = Histogram::new();

/// Queue wait: submission (or retry re-queue, backoff included) to
/// dispatch.
pub static QUEUE_WAIT: Histogram = Histogram::new();

/// Per-job pipeline stage timings, one histogram per stage; see
/// [`stage_histograms`] for the labeled view.
pub static STAGE_TOKENIZE: Histogram = Histogram::new();
/// See [`STAGE_TOKENIZE`].
pub static STAGE_NAMES_H1: Histogram = Histogram::new();
/// See [`STAGE_TOKENIZE`].
pub static STAGE_BLOCKING: Histogram = Histogram::new();
/// See [`STAGE_TOKENIZE`].
pub static STAGE_SIMILARITIES: Histogram = Histogram::new();
/// See [`STAGE_TOKENIZE`].
pub static STAGE_MATCHING: Histogram = Histogram::new();

/// The stage histograms with their Prometheus `stage` label values, in
/// pipeline order.
pub fn stage_histograms() -> [(&'static str, &'static Histogram); 5] {
    [
        ("tokenize", &STAGE_TOKENIZE),
        ("names_h1", &STAGE_NAMES_H1),
        ("blocking", &STAGE_BLOCKING),
        ("similarities", &STAGE_SIMILARITIES),
        ("matching", &STAGE_MATCHING),
    ]
}

/// Feeds one finished job's stage timings into the stage histograms.
pub fn observe_stages(t: &Timings) {
    STAGE_TOKENIZE.observe(t.tokenize);
    STAGE_NAMES_H1.observe(t.names_h1);
    STAGE_BLOCKING.observe(t.blocking);
    STAGE_SIMILARITIES.observe(t.similarities);
    STAGE_MATCHING.observe(t.matching);
}
