//! Failure-injection and edge-case tests: the pipeline must degrade
//! gracefully, never panic, on degenerate or corrupted inputs — and a
//! poisoned job in a serving fleet must fail alone.

use minoaner::core::{build_blocks, MinoanConfig, MinoanEr};
use minoaner::kb::{parse, KbBuilder, KbPair};
use minoaner::serve::{
    run_batch, CancelOutcome, CancelToken, JobInput, JobPhase, JobQueue, JobSpec, JobStatus,
    Manifest, ServeOptions,
};

#[test]
fn empty_kbs() {
    let pair = KbPair::new(KbBuilder::new("a").finish(), KbBuilder::new("b").finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert!(out.matching.is_empty());
}

#[test]
fn one_empty_side() {
    let mut a = KbBuilder::new("a");
    a.add_literal("a:1", "name", "something");
    let pair = KbPair::new(a.finish(), KbBuilder::new("b").finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert!(out.matching.is_empty());
}

#[test]
fn entities_without_literals() {
    let mut a = KbBuilder::new("a");
    a.add_uri("a:1", "knows", "a:2");
    a.declare_entity("a:2");
    let mut b = KbBuilder::new("b");
    b.add_uri("b:1", "knows", "b:2");
    b.declare_entity("b:2");
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    // Nothing to match on, but nothing crashes either.
    assert!(out.matching.is_empty());
}

#[test]
fn kb_without_relations_disables_neighbor_evidence_gracefully() {
    let mut a = KbBuilder::new("a");
    let mut b = KbBuilder::new("b");
    for i in 0..20 {
        a.add_literal(
            &format!("a:{i}"),
            "name",
            &format!("distinct name number {i}"),
        );
        b.add_literal(
            &format!("b:{i}"),
            "label",
            &format!("distinct name number {i}"),
        );
    }
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 20);
}

#[test]
fn self_loops_and_dangling_uris() {
    let mut a = KbBuilder::new("a");
    a.add_uri("a:1", "rel", "a:1"); // self-loop
    a.add_uri("a:1", "rel", "a:missing"); // dangling -> literal
    a.add_literal("a:1", "name", "weird entity");
    let mut b = KbBuilder::new("b");
    b.add_literal("b:1", "name", "weird entity");
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 1);
}

#[test]
fn unicode_and_long_values() {
    let mut a = KbBuilder::new("a");
    let long = "πολύ ".repeat(5000);
    a.add_literal("a:1", "name", &long);
    a.add_literal("a:1", "emoji", "🏛️ ruins");
    let mut b = KbBuilder::new("b");
    b.add_literal("b:1", "label", &long);
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 1);
}

#[test]
fn corrupted_ntriples_report_line_numbers() {
    let text = "<ok> <p> \"v\" .\nthis line is garbage\n";
    let err = parse::parse_ntriples("x", text).unwrap_err();
    assert_eq!(err.line, 2);
    assert!(!err.to_string().is_empty());
}

#[test]
fn duplicate_triples_are_harmless() {
    let mut a = KbBuilder::new("a");
    for _ in 0..10 {
        a.add_literal("a:1", "name", "same triple");
    }
    let mut b = KbBuilder::new("b");
    b.add_literal("b:1", "name", "same triple");
    let pair = KbPair::new(a.finish(), b.finish());
    let out = MinoanEr::with_defaults().run(&pair);
    assert_eq!(out.matching.len(), 1);
}

#[test]
fn extreme_configs_do_not_panic() {
    let mut a = KbBuilder::new("a");
    let mut b = KbBuilder::new("b");
    for i in 0..30 {
        a.add_literal(
            &format!("a:{i}"),
            "name",
            &format!("entity {i} shared words"),
        );
        b.add_literal(
            &format!("b:{i}"),
            "name",
            &format!("entity {i} shared words"),
        );
    }
    let pair = KbPair::new(a.finish(), b.finish());
    for config in [
        MinoanConfig {
            candidates_k: 1,
            ..Default::default()
        },
        MinoanConfig {
            candidates_k: 10_000,
            ..Default::default()
        },
        MinoanConfig {
            theta: 0.001,
            ..Default::default()
        },
        MinoanConfig {
            theta: 0.999,
            ..Default::default()
        },
        MinoanConfig {
            top_relations_n: 100,
            name_attrs_k: 50,
            ..Default::default()
        },
    ] {
        let out = MinoanEr::new(config).unwrap().run(&pair);
        assert!(!out.matching.is_empty());
    }
}

/// A scratch directory that cleans up after itself.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("minoan-failure-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn file(&self, name: &str, content: &str) -> std::path::PathBuf {
        let path = self.0.join(name);
        std::fs::write(&path, content).expect("write scratch file");
        path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A tiny two-sided TSV pair whose entities match on a distinctive name.
fn tsv_pair(tag: usize) -> (String, String) {
    let mut a = String::new();
    let mut b = String::new();
    for i in 0..8 {
        a.push_str(&format!("a:{i}\tname\tlit\tspecimen{tag}x{i} artifact\n"));
        b.push_str(&format!("b:{i}\tlabel\tlit\tspecimen{tag}x{i} artifact\n"));
    }
    (a, b)
}

#[test]
fn corrupt_job_fails_alone_in_a_fleet() {
    let scratch = ScratchDir::new("fleet");
    let mut jobs = Vec::new();
    for tag in 0..3 {
        let (a, b) = tsv_pair(tag);
        jobs.push(JobSpec {
            name: format!("good-{tag}"),
            input: JobInput::Files {
                first: scratch.file(&format!("a{tag}.tsv"), &a),
                second: scratch.file(&format!("b{tag}.tsv"), &b),
            },
            truth: None,
            theta: None,
            candidates_k: None,
            purge_blocks: None,
            timeout_ms: None,
            max_retries: None,
            persist: None,
        });
    }
    // A truncated N-Triples file: the second line is cut mid-triple.
    let corrupt = scratch.file(
        "corrupt.nt",
        "<x:1> <name> \"fine\" .\n<x:2> <name> \"truncat",
    );
    let (_, good_side) = tsv_pair(9);
    jobs.insert(
        1, // poison in the middle of the queue, not at the edges
        JobSpec {
            name: "poisoned".into(),
            input: JobInput::Files {
                first: corrupt,
                second: scratch.file("ok.tsv", &good_side),
            },
            truth: None,
            theta: None,
            candidates_k: None,
            purge_blocks: None,
            timeout_ms: None,
            max_retries: None,
            persist: None,
        },
    );
    let manifest = Manifest {
        slots: 2,
        threads: 2,
        memory_budget_mib: 0,
        timeout_ms: 0,
        max_retries: 0,
        jobs,
    };
    let report = run_batch(&manifest, &ServeOptions::default());

    // The poisoned job failed with a parse error naming the line…
    let poisoned = report.jobs.iter().find(|j| j.name == "poisoned").unwrap();
    let JobStatus::Failed(err) = &poisoned.status else {
        panic!("poisoned job should fail, got {:?}", poisoned.status);
    };
    assert!(err.contains("corrupt.nt"), "error names the file: {err}");
    assert!(poisoned.matches.is_empty());

    // …while every other job completed with its full matching.
    for job in report.jobs.iter().filter(|j| j.name != "poisoned") {
        assert!(job.status.is_ok(), "{}: {:?}", job.name, job.status);
        assert_eq!(job.matches.len(), 8, "{} lost matches", job.name);
    }
    assert_eq!(report.failed_count(), 1);
}

fn tiny_synthetic(name: &str) -> JobSpec {
    JobSpec {
        name: name.into(),
        input: JobInput::Synthetic {
            kind: minoaner::datagen::DatasetKind::Restaurant,
            seed: 20180416,
            scale: 0.03,
        },
        truth: None,
        theta: None,
        candidates_k: None,
        purge_blocks: None,
        timeout_ms: None,
        max_retries: None,
        persist: None,
    }
}

/// A cancel that races job dispatch must resolve to exactly one
/// terminal state — never a job that is simultaneously running and
/// cancelled. The queue's phase transitions are asserted internally
/// (an illegal transition panics the worker, which fails the scope),
/// and [`minoaner::serve::JobSnapshot`] carries a status **only** in
/// the `Done` phase, which a concurrent monitor verifies continuously.
#[test]
fn cancel_racing_dispatch_yields_exactly_one_terminal_state() {
    let opts = ServeOptions::default();
    for round in 0..6 {
        let queue = JobQueue::new(2, 2, 0);
        for i in 0..3 {
            queue.submit(tiny_synthetic(&format!("job-{i}"))).unwrap();
        }
        queue.close();
        let fleet = CancelToken::new();
        let outcome = std::sync::Mutex::new(None);
        std::thread::scope(|scope| {
            // The racing canceller goes first so some rounds hit the
            // job before dispatch and some mid-run.
            scope.spawn(|| {
                if round % 2 == 1 {
                    std::thread::yield_now();
                }
                *outcome.lock().unwrap() = Some(queue.cancel(1));
            });
            for _ in 0..2 {
                scope.spawn(|| queue.worker(&opts, &fleet, &|_, _| {}));
            }
            // Monitor: no snapshot may ever pair a non-terminal phase
            // with a status (or Done without one).
            while queue
                .snapshot()
                .iter()
                .inspect(|s| {
                    assert_eq!(
                        s.status.is_some(),
                        s.phase == JobPhase::Done,
                        "round {round}: job #{} is {:?} with status {:?}",
                        s.id,
                        s.phase,
                        s.status
                    );
                })
                .any(|s| s.phase != JobPhase::Done)
            {
                std::thread::yield_now();
            }
        });
        let outcome = outcome.into_inner().unwrap().unwrap();
        let reports = queue.into_reports();
        assert_eq!(reports.len(), 3);
        // Jobs 0 and 2 were never cancelled.
        assert_eq!(reports[0].status, JobStatus::Ok, "round {round}");
        assert_eq!(reports[2].status, JobStatus::Ok, "round {round}");
        // Job 1 ended in exactly the state the cancel outcome promised:
        // flipped before dispatch => Cancelled; caught running => it
        // unwinds at a checkpoint (Cancelled) or had already passed the
        // last one (Ok) — but never anything else, and never both.
        match outcome {
            CancelOutcome::CancelledQueued => {
                assert_eq!(reports[1].status, JobStatus::Cancelled, "round {round}");
                assert!(reports[1].matches.is_empty());
            }
            CancelOutcome::Cancelling | CancelOutcome::AlreadyDone => {
                assert!(
                    matches!(reports[1].status, JobStatus::Cancelled | JobStatus::Ok),
                    "round {round}: {:?}",
                    reports[1].status
                );
            }
            CancelOutcome::Unknown => panic!("round {round}: job 1 was submitted"),
        }
        if reports[1].status == JobStatus::Cancelled {
            assert!(
                reports[1].matches.is_empty(),
                "round {round}: a cancelled job must not leak partial output"
            );
        }
    }
}

/// Mid-run cancellation on the pool backend unwinds within a bounded
/// number of work quanta instead of draining the whole wave: the claim
/// loop re-checks the token before every
/// [`minoaner::exec::POOL_TASK_ITEMS`]-sized task, so the latency is
/// one task's runtime plus unwind, not the wave's.
#[test]
fn pool_cancel_unwinds_within_one_quantum() {
    use minoaner::exec::{catch_cancel, Cancelled, Executor, POOL_TASK_ITEMS};
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    let token = minoaner::exec::CancelToken::new();
    let exec = Executor::pool().with_cancel(token.clone());
    // Size the wave so an *uncancelled* run takes several seconds on
    // any core count: ~256 quanta per pool worker, each quantum a few
    // tens of milliseconds of busy work.
    let n = POOL_TASK_ITEMS * 256 * exec.threads();

    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            token.cancel();
        })
    };
    let start = Instant::now();
    let result = catch_cancel(|| {
        Ok(exec.map_range(n, |i| {
            let mut acc = i as u64;
            for k in 0..10_000u64 {
                acc = black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(k));
            }
            acc
        }))
    });
    let elapsed = start.elapsed();
    canceller.join().unwrap();
    assert!(
        matches!(result, Err(Cancelled)),
        "a cancelled pool wave must unwind as Cancelled"
    );
    // One quantum of the busy loop above is tens of milliseconds; even
    // with a very generous CI margin the unwind lands far below the
    // multi-second full-wave runtime.
    assert!(
        elapsed < Duration::from_secs(2),
        "cancel latency {elapsed:?} exceeds the bounded-quantum promise"
    );
}

#[test]
fn blocking_artifacts_are_consistent_under_no_purging() {
    let mut a = KbBuilder::new("a");
    let mut b = KbBuilder::new("b");
    for i in 0..50 {
        a.add_literal(&format!("a:{i}"), "name", &format!("stopword entity {i}"));
        b.add_literal(&format!("b:{i}"), "name", &format!("stopword entity {i}"));
    }
    let pair = KbPair::new(a.finish(), b.finish());
    let cfg = MinoanConfig {
        purge_blocks: false,
        ..Default::default()
    };
    let art = build_blocks(&pair, &cfg);
    assert!(art.purge.is_none());
    // "stopword" and "entity" blocks are 50x50 each.
    assert!(art.token_blocks.total_comparisons() >= 2 * 50 * 50);
}
