//! The queue-fronting request layer shared by the protocol front-ends.
//!
//! Both intake protocols — the line-JSON socket ([`crate::daemon`]) and
//! HTTP/1.1 ([`crate::http`]) — expose the same five operations over
//! the same live [`JobQueue`]: submit, status, cancel, wait, shutdown.
//! This module is the one implementation of those operations, returning
//! protocol-neutral JSON bodies and domain errors; each front-end only
//! adds its own framing (an `"ok"` envelope on the socket, status codes
//! and headers over HTTP). Response shapes therefore cannot drift
//! between protocols, and a job submitted over either one goes through
//! the identical parse → validate → admit path.
//!
//! Since the index API landed the same layer also fronts the
//! [`IndexRegistry`](crate::registry): build (through the job queue,
//! with the artifact path injected server-side), list, inspect, delete
//! and the hot match-query path, plus the **unified error schema** both
//! protocols emit — `{"error":{"code","message","retryable"}}`, wrapped
//! in `"ok":false` on the socket and under the HTTP status code on the
//! web front-end.

use std::time::Instant;

use minoan_kb::Json;

use crate::manifest::JobSpec;
use crate::registry::{IndexRegistry, RegistryError};
use crate::report::JobStatus;
use crate::scheduler::{CancelToken, JobId, JobQueue, JobSnapshot, SubmitError};

/// Machine-readable error code for an HTTP status, shared by both
/// protocols so a line-JSON client and an HTTP client see the same
/// `code` for the same failure.
pub(crate) fn code_for_status(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        401 => "unauthorized",
        404 => "not_found",
        405 => "method_not_allowed",
        409 => "conflict",
        413 => "payload_too_large",
        429 => "overloaded",
        431 => "headers_too_large",
        501 => "not_implemented",
        503 => "unavailable",
        505 => "http_version_not_supported",
        _ => "error",
    }
}

/// Whether retrying the identical request later can succeed, by status:
/// overload shed and temporary unavailability are worth a backoff;
/// everything else is the client's fault as sent.
pub(crate) fn retryable_status(status: u16) -> bool {
    matches!(status, 429 | 503)
}

/// The unified error object both protocols carry under their `"error"`
/// key: `{"code","message","retryable"}`.
pub(crate) fn error_body(code: &str, message: impl Into<String>, retryable: bool) -> Json {
    Json::obj([
        ("code", Json::str(code)),
        ("message", Json::str(message.into())),
        ("retryable", Json::Bool(retryable)),
    ])
}

/// How a shutdown request treats jobs still in the queue: `drain` lets
/// queued jobs run to completion, `cancel` flips queued jobs to
/// `Cancelled` and sets the tokens of running ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShutdownMode {
    /// Queued jobs still run; the server exits once the queue drains.
    Drain,
    /// Queued jobs flip to `Cancelled`; running jobs unwind at their
    /// next cooperative checkpoint.
    Cancel,
}

impl ShutdownMode {
    /// Parses the wire spelling (`None` defaults to drain).
    pub(crate) fn parse(label: Option<&str>) -> Result<ShutdownMode, String> {
        match label {
            None | Some("drain") => Ok(ShutdownMode::Drain),
            Some("cancel") => Ok(ShutdownMode::Cancel),
            Some(other) => Err(format!("unknown shutdown mode {other:?}")),
        }
    }
}

/// Why [`submit_job`] refused a job, with enough structure for each
/// front-end to pick its own framing (HTTP status code and
/// `Retry-After`, line-JSON `"retryable"` flag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SubmitRejection {
    /// Malformed or invalid job spec: the client's fault, never
    /// retryable as-is.
    Invalid(String),
    /// The queue is closed (shutdown in progress): not retryable.
    Closed,
    /// Overload shed: retryable after backing off.
    Overloaded(String),
}

impl SubmitRejection {
    /// Whether resubmitting the identical request later can succeed.
    pub(crate) fn retryable(&self) -> bool {
        matches!(self, SubmitRejection::Overloaded(_))
    }
}

impl std::fmt::Display for SubmitRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitRejection::Invalid(e) => f.write_str(e),
            SubmitRejection::Closed => SubmitError::Closed.fmt(f),
            SubmitRejection::Overloaded(detail) => write!(f, "overloaded: {detail}"),
        }
    }
}

/// Parses, validates and submits one job given in the manifest job
/// schema; returns the new id and the job's name.
pub(crate) fn submit_job(queue: &JobQueue, job: &Json) -> Result<(JobId, String), SubmitRejection> {
    let spec = JobSpec::from_json(job)
        .and_then(|s| s.validate().map(|()| s))
        .map_err(|e| SubmitRejection::Invalid(format!("bad job: {e}")))?;
    let name = spec.name.clone();
    let id = queue.submit(spec).map_err(|e| match e {
        SubmitError::Closed => SubmitRejection::Closed,
        SubmitError::Overloaded(detail) => SubmitRejection::Overloaded(detail),
    })?;
    Ok((id, name))
}

/// One queue entry as the JSON object both protocols list: id, name,
/// phase, and — exactly when terminal — status (plus the error message
/// for failures).
pub(crate) fn snapshot_json(snap: &JobSnapshot) -> Json {
    let mut fields = vec![
        ("id".to_string(), Json::num(snap.id as f64)),
        ("name".to_string(), Json::str(&snap.name)),
        ("phase".to_string(), Json::str(snap.phase.label())),
    ];
    if let Some(status) = &snap.status {
        fields.push(("status".to_string(), Json::str(status.label())));
        if let JobStatus::Failed(e) = status {
            fields.push(("error".to_string(), Json::str(e)));
        }
    }
    Json::Obj(fields)
}

/// The labels [`JobFilter::status`] accepts: lifecycle phases plus the
/// terminal status labels of [`JobStatus`].
const STATUS_FILTER_LABELS: [&str; 9] = [
    "queued",
    "running",
    "done",
    "ok",
    "failed",
    "cancelled",
    "timed_out",
    "poisoned",
    "killed_over_budget",
];

/// Optional narrowing of the job list both protocols support:
/// HTTP spells it `GET /v1/jobs?status=<s>&limit=<n>`, the socket adds
/// `"status"`/`"limit"` fields to the `status` op.
#[derive(Debug, Clone, Default)]
pub(crate) struct JobFilter {
    /// Only the job with this id (an unknown id is an error).
    pub(crate) id: Option<JobId>,
    /// Only jobs in this phase (`queued`/`running`/`done`) or with this
    /// terminal status (`ok`/`failed`/`cancelled`/`timed_out`/
    /// `poisoned`/`killed_over_budget`).
    pub(crate) status: Option<String>,
    /// At most this many jobs, keeping the earliest ids (counts and
    /// telemetry stay fleet-wide).
    pub(crate) limit: Option<usize>,
}

impl JobFilter {
    fn matches(&self, snap: &JobSnapshot) -> bool {
        if self.id.is_some_and(|id| snap.id != id) {
            return false;
        }
        match self.status.as_deref() {
            None => true,
            Some(label) => {
                snap.phase.label() == label
                    || snap.status.as_ref().is_some_and(|s| s.label() == label)
            }
        }
    }
}

/// The common status body: accepting flag, phase counts, live queue
/// telemetry ([`JobQueue::stats`]) and the job list, narrowed by
/// `filter` (an unknown id or status label is an error). When an index
/// registry is live its cache telemetry rides along as `"indexes"`.
pub(crate) fn status_json(
    queue: &JobQueue,
    accepting: bool,
    filter: &JobFilter,
    registry: Option<&IndexRegistry>,
) -> Result<Json, String> {
    if let Some(label) = filter.status.as_deref() {
        if !STATUS_FILTER_LABELS.contains(&label) {
            return Err(format!(
                "unknown status filter {label:?} (expected one of {})",
                STATUS_FILTER_LABELS.join("|")
            ));
        }
    }
    // One lock acquisition for both views: counts taken separately
    // from the job list could contradict it when a job finishes
    // between the two reads.
    let (snapshot, stats) = queue.snapshot_and_stats();
    if let Some(id) = filter.id {
        if id >= snapshot.len() {
            return Err(format!("unknown job id {id}"));
        }
    }
    let jobs: Vec<Json> = snapshot
        .iter()
        .filter(|s| filter.matches(s))
        .take(filter.limit.unwrap_or(usize::MAX))
        .map(snapshot_json)
        .collect();
    let mut fields = vec![
        ("accepting".to_string(), Json::Bool(accepting)),
        ("queued".to_string(), Json::num(stats.queued as f64)),
        ("running".to_string(), Json::num(stats.running as f64)),
        ("done".to_string(), Json::num(stats.done() as f64)),
        ("telemetry".to_string(), stats.to_json()),
        ("jobs".to_string(), Json::Arr(jobs)),
    ];
    if let Some(registry) = registry {
        fields.push(("indexes".to_string(), registry.stats_json()));
    }
    Ok(Json::Obj(fields))
}

/// Blocks until job `id` is terminal, then returns the body shared by
/// the socket's `wait` op and HTTP's `?wait=true`: id, the raw
/// deterministic fingerprint, and the full report. `None` for an
/// unknown id.
pub(crate) fn wait_json(queue: &JobQueue, id: JobId) -> Option<Json> {
    let report = queue.wait(id)?;
    Some(Json::obj([
        ("id", Json::num(id as f64)),
        ("fingerprint", Json::str(report.fingerprint())),
        ("report", report.to_json(true)),
    ]))
}

/// One job's current state: the snapshot fields, plus the fingerprint
/// and full report once the job is terminal. With `wait`, blocks until
/// terminal first. `None` for an unknown id.
pub(crate) fn job_json(queue: &JobQueue, id: JobId, wait: bool) -> Option<Json> {
    // At most one report clone: the blocking wait's result is reused
    // for the response instead of being fetched a second time.
    let waited = if wait { Some(queue.wait(id)?) } else { None };
    let snap = queue.job_snapshot(id)?;
    let body = snapshot_json(&snap);
    if snap.status.is_none() {
        return Some(body);
    }
    let report = match waited {
        Some(report) => report,
        // Terminal, so this wait() returns immediately.
        None => queue.wait(id)?,
    };
    let Json::Obj(mut fields) = body else {
        unreachable!("snapshot_json builds an object");
    };
    fields.push(("fingerprint".into(), Json::str(report.fingerprint())));
    fields.push(("report".into(), report.to_json(true)));
    Some(Json::Obj(fields))
}

/// Executes a shutdown. The queue is closed *here*, synchronously with
/// the request, not merely when an accept loop notices the flag: a
/// submit racing that window on another connection would otherwise be
/// admitted after a cancel-mode sweep and run to completion. The
/// shared `shutdown` flag then stops every accept loop and connection
/// handler.
pub(crate) fn shutdown(queue: &JobQueue, flag: &CancelToken, mode: ShutdownMode) {
    queue.close();
    if mode == ShutdownMode::Cancel {
        queue.cancel_all();
    }
    flag.cancel();
}

/// Default `k` (candidate list length) of a match query when the client
/// does not pass one.
pub(crate) const DEFAULT_MATCH_K: usize = 10;

/// Largest accepted `k` of a match query. The candidate lists an
/// artifact stores are capped (`max_top_neighbors`) far below this, so
/// a bigger `k` cannot produce more answers — it only lets clients ask
/// the server to build pointlessly large response bodies.
pub(crate) const MAX_MATCH_K: usize = 1000;

/// Why an index operation failed, with enough structure for each
/// front-end to pick its status code; the unified error body comes from
/// [`IndexRejection::to_error_body`], so both protocols emit the same
/// `code`/`message`/`retryable` triple.
#[derive(Debug)]
pub(crate) enum IndexRejection {
    /// Malformed id, job spec or query parameter (HTTP `400`).
    BadRequest(String),
    /// No such index, or the queried entity is in neither KB (`404`).
    NotFound(String),
    /// An index with this id already exists, or the queue is closed
    /// (`409`).
    Conflict(String),
    /// Overload shed on the build path (`429`, retryable).
    Overloaded(String),
    /// Index serving is disabled or the artifact cannot be read
    /// (`503`; retryable exactly for transient I/O trouble).
    Unavailable {
        /// Human-readable cause.
        message: String,
        /// Whether a retry could succeed.
        retryable: bool,
    },
}

impl IndexRejection {
    /// The HTTP status this rejection maps to.
    pub(crate) fn status(&self) -> u16 {
        match self {
            IndexRejection::BadRequest(_) => 400,
            IndexRejection::NotFound(_) => 404,
            IndexRejection::Conflict(_) => 409,
            IndexRejection::Overloaded(_) => 429,
            IndexRejection::Unavailable { .. } => 503,
        }
    }

    /// Whether resubmitting the identical request later can succeed.
    pub(crate) fn retryable(&self) -> bool {
        match self {
            IndexRejection::Overloaded(_) => true,
            IndexRejection::Unavailable { retryable, .. } => *retryable,
            _ => false,
        }
    }

    /// The unified `{"code","message","retryable"}` error object.
    pub(crate) fn to_error_body(&self) -> Json {
        let message = match self {
            IndexRejection::BadRequest(m)
            | IndexRejection::NotFound(m)
            | IndexRejection::Conflict(m)
            | IndexRejection::Overloaded(m)
            | IndexRejection::Unavailable { message: m, .. } => m.as_str(),
        };
        error_body(code_for_status(self.status()), message, self.retryable())
    }
}

impl From<RegistryError> for IndexRejection {
    fn from(e: RegistryError) -> Self {
        match e {
            RegistryError::InvalidId => IndexRejection::BadRequest(e.to_string()),
            RegistryError::NotFound => IndexRejection::NotFound(e.to_string()),
            RegistryError::Artifact(_) => IndexRejection::Unavailable {
                retryable: e.retryable(),
                message: e.to_string(),
            },
        }
    }
}

/// The registry, or the uniform "serving disabled" rejection when the
/// daemon runs without an index directory.
fn need_registry(registry: Option<&IndexRegistry>) -> Result<&IndexRegistry, IndexRejection> {
    registry.ok_or_else(|| IndexRejection::Unavailable {
        message: "index serving is disabled (start the server with --index-dir)".into(),
        retryable: false,
    })
}

/// `POST /v1/indexes` / op `index-build`: parse the job, reserve the
/// artifact path (server-side — the wire schema has no path field) and
/// admit the build through the supervised queue. The index id is the
/// job name.
pub(crate) fn index_build(
    queue: &JobQueue,
    registry: Option<&IndexRegistry>,
    job: &Json,
) -> Result<(JobId, String), IndexRejection> {
    let registry = need_registry(registry)?;
    let mut spec = JobSpec::from_json(job)
        .and_then(|s| s.validate().map(|()| s))
        .map_err(|e| IndexRejection::BadRequest(format!("bad job: {e}")))?;
    let path = registry
        .path_for(&spec.name)
        .map_err(IndexRejection::from)?;
    if path.exists() {
        return Err(IndexRejection::Conflict(format!(
            "index {:?} already exists; DELETE it first to rebuild",
            spec.name
        )));
    }
    spec.persist = Some(path);
    let name = spec.name.clone();
    let id = queue.submit(spec).map_err(|e| match e {
        SubmitError::Closed => IndexRejection::Conflict(e.to_string()),
        SubmitError::Overloaded(detail) => {
            IndexRejection::Overloaded(format!("overloaded: {detail}"))
        }
    })?;
    Ok((id, name))
}

/// `PATCH /v1/indexes/{id}` / op `index-patch`: parse the delta stream
/// (the [`minoan_kb::delta`] wire schema, `{"deltas":[…]}`) and admit
/// an incremental re-resolution job through the supervised queue. The
/// job loads the artifact, applies the ops with O(delta) re-resolution,
/// and atomically rewrites the file; the daemon's completion hook then
/// drops the stale cached copy. One patch per index at a time: a second
/// PATCH while one is queued or running is a `409` — two writers would
/// race on the same artifact file.
pub(crate) fn index_patch(
    queue: &JobQueue,
    registry: Option<&IndexRegistry>,
    id: &str,
    body: &Json,
) -> Result<(JobId, String), IndexRejection> {
    let registry = need_registry(registry)?;
    let path = registry.path_for(id).map_err(IndexRejection::from)?;
    let ops = minoan_kb::delta::ops_from_json(body)
        .map_err(|e| IndexRejection::BadRequest(format!("bad delta stream: {e}")))?;
    if ops.is_empty() {
        return Err(IndexRejection::BadRequest(
            "the delta stream is empty; send at least one op".into(),
        ));
    }
    if !path.exists() {
        return Err(IndexRejection::NotFound(format!("no such index {id:?}")));
    }
    if queue.patch_in_flight(id) {
        return Err(IndexRejection::Conflict(format!(
            "a patch for index {id:?} is already queued or running; wait for it first"
        )));
    }
    let spec = JobSpec {
        name: format!("{id}:patch"),
        input: crate::manifest::JobInput::IndexPatch {
            id: id.to_string(),
            path,
            ops,
        },
        truth: None,
        theta: None,
        candidates_k: None,
        purge_blocks: None,
        timeout_ms: None,
        max_retries: None,
        persist: None,
    };
    let job = queue.submit(spec).map_err(|e| match e {
        SubmitError::Closed => IndexRejection::Conflict(e.to_string()),
        SubmitError::Overloaded(detail) => {
            IndexRejection::Overloaded(format!("overloaded: {detail}"))
        }
    })?;
    Ok((job, id.to_string()))
}

/// `GET /v1/indexes` / op `index-list`: every persisted index plus the
/// loaded-cache telemetry.
pub(crate) fn index_list(registry: Option<&IndexRegistry>) -> Result<Json, IndexRejection> {
    let registry = need_registry(registry)?;
    let entries = registry.list().map_err(|e| IndexRejection::Unavailable {
        message: format!("cannot list index directory: {e}"),
        retryable: true,
    })?;
    let indexes: Vec<Json> = entries
        .iter()
        .map(|e| {
            Json::obj([
                ("id", Json::str(&e.id)),
                ("file_bytes", Json::num(e.file_bytes as f64)),
                ("loaded", Json::Bool(e.loaded)),
            ])
        })
        .collect();
    Ok(Json::obj([
        ("indexes", Json::Arr(indexes)),
        ("cache", registry.stats_json()),
    ]))
}

/// `GET /v1/indexes/{id}` / op `index-inspect`: the artifact's metadata
/// (sizes, entity counts, build timings, format version).
pub(crate) fn index_meta(
    registry: Option<&IndexRegistry>,
    id: &str,
) -> Result<Json, IndexRejection> {
    let registry = need_registry(registry)?;
    let meta = registry.meta(id).map_err(IndexRejection::from)?;
    let Json::Obj(mut fields) = meta.to_json() else {
        unreachable!("meta JSON is an object");
    };
    fields.insert(0, ("id".to_string(), Json::str(id)));
    Ok(Json::Obj(fields))
}

/// `DELETE /v1/indexes/{id}` / op `index-delete`: drop the artifact and
/// evict any cached copy.
pub(crate) fn index_delete(
    registry: Option<&IndexRegistry>,
    id: &str,
) -> Result<Json, IndexRejection> {
    let registry = need_registry(registry)?;
    registry.delete(id).map_err(IndexRejection::from)?;
    Ok(Json::obj([
        ("index", Json::str(id)),
        ("deleted", Json::Bool(true)),
    ]))
}

/// `GET /v1/indexes/{id}/match?entity=<iri>&k=<n>` / op `index-match`:
/// the hot path. Answers from the loaded artifact — no ingest, no
/// blocking, no pipeline — and says so in its stage-timing telemetry:
/// the build-once stages report zero, only `load` (amortized to zero
/// by the cache) and `query` spend anything.
pub(crate) fn index_match(
    registry: Option<&IndexRegistry>,
    id: &str,
    entity: &str,
    k: usize,
) -> Result<Json, IndexRejection> {
    let registry = need_registry(registry)?;
    if entity.is_empty() {
        return Err(IndexRejection::BadRequest(
            "match queries need a non-empty `entity` IRI".into(),
        ));
    }
    if k == 0 {
        return Err(IndexRejection::BadRequest("`k` must be at least 1".into()));
    }
    if k > MAX_MATCH_K {
        return Err(IndexRejection::BadRequest(format!(
            "`k` must be at most {MAX_MATCH_K}, got {k}"
        )));
    }
    let t_load = Instant::now();
    let artifact = registry.load(id).map_err(IndexRejection::from)?;
    let load_ms = t_load.elapsed().as_secs_f64() * 1e3;
    let t_query = Instant::now();
    let answer = artifact.match_query(entity, k).ok_or_else(|| {
        IndexRejection::NotFound(format!(
            "entity {entity:?} is in neither KB of index {id:?}"
        ))
    })?;
    let query_ms = t_query.elapsed().as_secs_f64() * 1e3;
    // One end-to-end latency observation per answered query (load +
    // query; rejected queries never reach here).
    crate::telemetry::MATCH_QUERY.observe(t_load.elapsed());
    let candidates: Vec<Json> = answer
        .candidates
        .iter()
        .map(|(uri, score)| Json::obj([("uri", Json::str(uri)), ("score", Json::Num(*score))]))
        .collect();
    Ok(Json::obj([
        ("index", Json::str(id)),
        ("entity", Json::str(&answer.entity)),
        (
            "side",
            Json::str(match answer.side {
                minoan_kb::KbSide::First => "first",
                minoan_kb::KbSide::Second => "second",
            }),
        ),
        ("matches", Json::arr(answer.matches.iter().map(Json::str))),
        ("candidates", Json::Arr(candidates)),
        (
            // The zero-ingest guarantee, observable per answer: the
            // build-once stages literally cost nothing on this path.
            "stage_timings_ms",
            Json::obj([
                ("ingest", Json::num(0.0)),
                ("blocking", Json::num(0.0)),
                ("similarities", Json::num(0.0)),
                ("load", Json::Num(load_ms)),
                ("query", Json::Num(query_ms)),
            ]),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::JobInput;
    use minoan_datagen::DatasetKind;

    fn queue_with_one_queued_job() -> (JobQueue, JobId) {
        let queue = JobQueue::new(1, 1, 0);
        let id = queue
            .submit(JobSpec {
                name: "j".into(),
                input: JobInput::Synthetic {
                    kind: DatasetKind::Restaurant,
                    seed: 1,
                    scale: 0.05,
                },
                truth: None,
                theta: None,
                candidates_k: None,
                purge_blocks: None,
                timeout_ms: None,
                max_retries: None,
                persist: None,
            })
            .unwrap();
        (queue, id)
    }

    fn only_id(id: JobId) -> JobFilter {
        JobFilter {
            id: Some(id),
            ..JobFilter::default()
        }
    }

    #[test]
    fn shutdown_mode_parses_wire_labels() {
        assert_eq!(ShutdownMode::parse(None), Ok(ShutdownMode::Drain));
        assert_eq!(ShutdownMode::parse(Some("drain")), Ok(ShutdownMode::Drain));
        assert_eq!(
            ShutdownMode::parse(Some("cancel")),
            Ok(ShutdownMode::Cancel)
        );
        assert!(ShutdownMode::parse(Some("explode"))
            .unwrap_err()
            .contains("unknown shutdown mode"));
    }

    #[test]
    fn status_body_carries_counts_and_telemetry() {
        let (queue, id) = queue_with_one_queued_job();
        let body = status_json(&queue, true, &JobFilter::default(), None).unwrap();
        assert_eq!(body.get("accepting"), Some(&Json::Bool(true)));
        assert_eq!(body.get("queued").unwrap().as_usize(), Some(1));
        assert_eq!(body.get("done").unwrap().as_usize(), Some(0));
        let telemetry = body.get("telemetry").expect("telemetry object");
        assert_eq!(telemetry.get("queued").unwrap().as_usize(), Some(1));
        assert!(telemetry.get("stage_ms").is_some());
        assert!(status_json(&queue, true, &only_id(id), None).is_ok());
        let err = status_json(&queue, true, &only_id(7), None).unwrap_err();
        assert!(err.contains("unknown job id"), "{err}");
    }

    #[test]
    fn status_filters_narrow_the_job_list() {
        let (queue, id) = queue_with_one_queued_job();
        let filtered = |status: Option<&str>, limit: Option<usize>| {
            status_json(
                &queue,
                true,
                &JobFilter {
                    id: None,
                    status: status.map(str::to_string),
                    limit,
                },
                None,
            )
        };
        let by_phase = filtered(Some("queued"), None).unwrap();
        let Json::Arr(jobs) = by_phase.get("jobs").unwrap().clone() else {
            panic!("jobs is an array");
        };
        assert_eq!(jobs.len(), 1);
        // No job is terminal yet, so a terminal-status filter matches
        // nothing — but the fleet-wide counts are untouched.
        let by_status = filtered(Some("ok"), None).unwrap();
        assert_eq!(by_status.get("jobs"), Some(&Json::Arr(Vec::new())));
        assert_eq!(by_status.get("queued").unwrap().as_usize(), Some(1));
        let limited = filtered(None, Some(0)).unwrap();
        assert_eq!(limited.get("jobs"), Some(&Json::Arr(Vec::new())));
        let err = filtered(Some("exploded"), None).unwrap_err();
        assert!(err.contains("unknown status filter"), "{err}");
        queue.cancel(id);
        let cancelled = filtered(Some("cancelled"), None).unwrap();
        let Json::Arr(jobs) = cancelled.get("jobs").unwrap().clone() else {
            panic!("jobs is an array");
        };
        assert_eq!(jobs.len(), 1, "terminal label matches after cancel");
    }

    #[test]
    fn unified_error_body_has_the_three_fields() {
        let body = error_body(code_for_status(429), "back off", retryable_status(429));
        assert_eq!(body.get("code").unwrap().as_str(), Some("overloaded"));
        assert_eq!(body.get("message").unwrap().as_str(), Some("back off"));
        assert_eq!(body.get("retryable"), Some(&Json::Bool(true)));
        assert_eq!(code_for_status(404), "not_found");
        assert!(!retryable_status(404));
        assert!(retryable_status(503));
    }

    #[test]
    fn index_ops_without_a_registry_reject_as_unavailable() {
        let queue = JobQueue::new(1, 1, 0);
        let job = Json::parse(r#"{"name":"ix","dataset":"restaurant","scale":0.05}"#).unwrap();
        let err = index_build(&queue, None, &job).unwrap_err();
        assert_eq!(err.status(), 503);
        assert!(!err.retryable());
        let body = err.to_error_body();
        assert_eq!(body.get("code").unwrap().as_str(), Some("unavailable"));
        assert!(index_list(None).is_err());
        assert!(index_meta(None, "ix").is_err());
        assert!(index_delete(None, "ix").is_err());
        assert!(index_match(None, "ix", "a:1", 5).is_err());
    }

    #[test]
    fn job_body_grows_a_report_once_terminal() {
        let (queue, id) = queue_with_one_queued_job();
        let body = job_json(&queue, id, false).unwrap();
        assert_eq!(body.get("phase").unwrap().as_str(), Some("queued"));
        assert!(body.get("report").is_none(), "no report before terminal");
        queue.cancel(id);
        let body = job_json(&queue, id, false).unwrap();
        assert_eq!(body.get("status").unwrap().as_str(), Some("cancelled"));
        assert!(body.get("report").is_some());
        assert!(body.get("fingerprint").is_some());
        assert!(job_json(&queue, 9, false).is_none(), "unknown id");
    }

    #[test]
    fn cancel_mode_shutdown_flips_queued_jobs() {
        let (queue, id) = queue_with_one_queued_job();
        let flag = CancelToken::new();
        shutdown(&queue, &flag, ShutdownMode::Cancel);
        assert!(flag.is_cancelled());
        let report = queue.wait(id).unwrap();
        assert_eq!(report.status, JobStatus::Cancelled);
        let job = Json::parse(r#"{"name":"late","dataset":"restaurant","scale":0.05}"#).unwrap();
        let err = submit_job(&queue, &job).unwrap_err();
        assert_eq!(err, SubmitRejection::Closed);
        assert!(!err.retryable());
        assert!(err.to_string().contains("closed"), "{err}");
    }
}
