//! SiGMa-like baseline: simple greedy matching with iterative neighbor
//! propagation (after Lacoste-Julien et al., KDD 2013).
//!
//! Seeds are exact-name matches. Candidate pairs (token-block
//! co-occurrences) enter a priority queue scored by a weighted
//! combination of value similarity and the fraction of already-matched
//! neighbor pairs. The top pair is accepted when both entities are free
//! and the (lazily re-evaluated) score clears the threshold; each
//! acceptance re-scores the neighborhood — the iterative,
//! seed-propagating behaviour MinoanER explicitly avoids.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use minoan_blocking::BlockCollection;
use minoan_kb::{EntityId, FxHashMap, FxHashSet, KbPair, KbSide, Matching, TokenId};
use minoan_sim::token_weight;
use minoan_text::TokenizedPair;

/// SiGMa-like configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigmaConfig {
    /// Final-score acceptance threshold.
    pub threshold: f64,
    /// Weight of the neighbor-overlap component (value gets `1 - w`).
    pub neighbor_weight: f64,
}

impl Default for SigmaConfig {
    fn default() -> Self {
        Self {
            threshold: 0.2,
            neighbor_weight: 0.4,
        }
    }
}

#[derive(Debug, PartialEq)]
struct QueueItem {
    score: f64,
    pair: (EntityId, EntityId),
}

impl Eq for QueueItem {}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            // Max-heap on score; deterministic tie-break on the pair.
            .then_with(|| other.pair.cmp(&self.pair))
    }
}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Normalized weighted Jaccard over token sets, with the same
/// inverse-frequency token weights as `valueSim`. Bounded in `[0, 1]`.
fn weighted_jaccard(tokens: &TokenizedPair, e1: EntityId, e2: EntityId) -> f64 {
    let a = tokens.tokens(KbSide::First, e1);
    let b = tokens.tokens(KbSide::Second, e2);
    let dict = tokens.dict();
    // Clamp EFs to 1: tokens on only one side have EF 0 on the other,
    // which would make the weight infinite (log2(0+1) = 0).
    let w = |t: TokenId| {
        token_weight(
            dict.ef(KbSide::First, t).max(1),
            dict.ef(KbSide::Second, t).max(1),
        )
    };
    let (mut i, mut j) = (0, 0);
    let mut inter = 0.0;
    let mut union = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => {
                union += w(a[i]);
                i += 1;
            }
            Ordering::Greater => {
                union += w(b[j]);
                j += 1;
            }
            Ordering::Equal => {
                let x = w(a[i]);
                inter += x;
                union += x;
                i += 1;
                j += 1;
            }
        }
    }
    union += a[i..].iter().map(|&t| w(t)).sum::<f64>();
    union += b[j..].iter().map(|&t| w(t)).sum::<f64>();
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Runs the SiGMa-like matcher.
///
/// `seeds` are accepted unconditionally first (the paper's "seed matches
/// with identical entity names"); `blocks` provides the candidate space.
pub fn run_sigma(
    pair: &KbPair,
    tokens: &TokenizedPair,
    blocks: &BlockCollection,
    seeds: &[(EntityId, EntityId)],
    config: SigmaConfig,
) -> Matching {
    let neighbors = |side: KbSide, e: EntityId| -> Vec<EntityId> {
        let kb = pair.kb(side);
        let mut v: Vec<EntityId> = kb.edges(e).map(|edge| edge.neighbor).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut matched1: FxHashMap<EntityId, EntityId> = FxHashMap::default();
    let mut matched2: FxHashMap<EntityId, EntityId> = FxHashMap::default();
    let mut matching = Matching::new();
    let accept = |e1: EntityId,
                  e2: EntityId,
                  matching: &mut Matching,
                  m1: &mut FxHashMap<EntityId, EntityId>,
                  m2: &mut FxHashMap<EntityId, EntityId>| {
        if m1.contains_key(&e1) || m2.contains_key(&e2) {
            return false;
        }
        m1.insert(e1, e2);
        m2.insert(e2, e1);
        matching.insert(e1, e2);
        true
    };
    for &(e1, e2) in seeds {
        accept(e1, e2, &mut matching, &mut matched1, &mut matched2);
    }

    let score = |e1: EntityId, e2: EntityId, matched1: &FxHashMap<EntityId, EntityId>| {
        let v = weighted_jaccard(tokens, e1, e2);
        let n1 = neighbors(KbSide::First, e1);
        let n2: FxHashSet<EntityId> = neighbors(KbSide::Second, e2).into_iter().collect();
        let deg = n1.len().max(n2.len());
        let nb = if deg == 0 {
            0.0
        } else {
            let hits = n1
                .iter()
                .filter(|n| matched1.get(n).is_some_and(|m| n2.contains(m)))
                .count();
            hits as f64 / deg as f64
        };
        (1.0 - config.neighbor_weight) * v + config.neighbor_weight * nb
    };

    let mut heap: BinaryHeap<QueueItem> = BinaryHeap::new();
    for (e1, e2) in blocks.distinct_pairs() {
        let s = score(e1, e2, &matched1);
        if s > 0.0 {
            heap.push(QueueItem {
                score: s,
                pair: (e1, e2),
            });
        }
    }
    while let Some(QueueItem {
        score: s,
        pair: (e1, e2),
    }) = heap.pop()
    {
        if s < config.threshold {
            break;
        }
        if matched1.contains_key(&e1) || matched2.contains_key(&e2) {
            continue;
        }
        // Lazy re-evaluation: neighborhoods may have changed since this
        // entry was pushed.
        let fresh = score(e1, e2, &matched1);
        if fresh + 1e-12 < s {
            if fresh > 0.0 {
                heap.push(QueueItem {
                    score: fresh,
                    pair: (e1, e2),
                });
            }
            continue;
        }
        if accept(e1, e2, &mut matching, &mut matched1, &mut matched2) {
            // Re-push co-occurring neighbor pairs: their neighbor overlap
            // may have just improved.
            for n1 in neighbors(KbSide::First, e1) {
                if matched1.contains_key(&n1) {
                    continue;
                }
                for n2 in blocks.co_occurring(KbSide::First, n1) {
                    if matched2.contains_key(&n2) {
                        continue;
                    }
                    let s = score(n1, n2, &matched1);
                    if s >= config.threshold {
                        heap.push(QueueItem {
                            score: s,
                            pair: (n1, n2),
                        });
                    }
                }
            }
        }
    }
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::token_blocking;
    use minoan_kb::KbBuilder;
    use minoan_text::Tokenizer;

    fn build(
        pairs1: &[(&str, &str)],
        pairs2: &[(&str, &str)],
    ) -> (KbPair, TokenizedPair, BlockCollection) {
        let mut a = KbBuilder::new("E1");
        for (uri, lit) in pairs1 {
            a.add_literal(uri, "v", lit);
        }
        let mut b = KbBuilder::new("E2");
        for (uri, lit) in pairs2 {
            b.add_literal(uri, "v", lit);
        }
        let pair = KbPair::new(a.finish(), b.finish());
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&tokens);
        (pair, tokens, bt)
    }

    #[test]
    fn value_similar_pairs_are_matched() {
        let (pair, tokens, bt) = build(
            &[("a:0", "kri kri taverna"), ("a:1", "labyrinth grill")],
            &[("b:0", "kri kri taverna"), ("b:1", "labyrinth grill house")],
        );
        let m = run_sigma(&pair, &tokens, &bt, &[], SigmaConfig::default());
        assert!(m.contains(EntityId(0), EntityId(0)));
        assert!(m.contains(EntityId(1), EntityId(1)));
        assert!(m.is_partial_matching());
    }

    #[test]
    fn seeds_are_kept_and_not_overridden() {
        let (pair, tokens, bt) = build(&[("a:0", "x y")], &[("b:0", "x y"), ("b:1", "x y")]);
        let m = run_sigma(
            &pair,
            &tokens,
            &bt,
            &[(EntityId(0), EntityId(1))],
            SigmaConfig::default(),
        );
        assert!(m.contains(EntityId(0), EntityId(1)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn neighbor_propagation_links_weak_valued_pairs() {
        // Movies share one frequent token; actors are strong matches.
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:m", "t", "film");
        a.add_uri("a:m", "starring", "a:p");
        a.add_literal("a:p", "n", "melina unique mercouri");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:m", "t", "film");
        b.add_uri("b:m", "starring", "b:p");
        b.add_literal("b:p", "n", "melina unique mercouri");
        // Distractor movie with the same weak token but no actor.
        b.add_literal("b:x", "t", "film other things");
        let pair = KbPair::new(a.finish(), b.finish());
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&tokens);
        let m = run_sigma(&pair, &tokens, &bt, &[], SigmaConfig::default());
        let am = pair.first.entity_by_uri("a:m").unwrap();
        let bm = pair.second.entity_by_uri("b:m").unwrap();
        assert!(m.contains(am, bm), "got {:?}", m.iter().collect::<Vec<_>>());
    }

    #[test]
    fn high_threshold_rejects_weak_pairs() {
        let (pair, tokens, bt) = build(&[("a:0", "x common")], &[("b:0", "x different")]);
        let m = run_sigma(
            &pair,
            &tokens,
            &bt,
            &[],
            SigmaConfig {
                threshold: 0.9,
                neighbor_weight: 0.4,
            },
        );
        assert!(m.is_empty());
    }

    #[test]
    fn weighted_jaccard_is_bounded() {
        let (_, tokens, _) = build(&[("a:0", "x y z")], &[("b:0", "x y q")]);
        let v = weighted_jaccard(&tokens, EntityId(0), EntityId(0));
        assert!(v > 0.0 && v < 1.0);
        let (_, tokens, _) = build(&[("a:0", "same same")], &[("b:0", "same")]);
        let v = weighted_jaccard(&tokens, EntityId(0), EntityId(0));
        assert!((v - 1.0).abs() < 1e-12);
    }
}
