//! # minoan-serve — the multi-pair serving layer
//!
//! MinoanER resolves one KB pair; production traffic is a *fleet* of
//! pairs. This crate is the layer that turns the engine into a service:
//! a live bounded-memory admission queue ([`scheduler::JobQueue`])
//! schedules jobs across the executor with **pair-level parallelism
//! first** and intra-pair parallelism for stragglers, and streams
//! per-job results, timings and peak-RSS metrics into a report. Two
//! front-ends drain the same queue: **batch mode** ([`run_batch`])
//! submits a whole manifest up front, and **daemon mode**
//! ([`run_server`], `minoaner serve`) accepts jobs as they arrive over
//! one or both live protocols — the line-delimited JSON socket
//! (`--listen`, see [`daemon`] for the wire protocol and checkpoint
//! granularity) and the dependency-free HTTP/1.1 front-end
//! (`--listen-http`, see [`http`] for the endpoint table, bearer-token
//! auth, request limits and Prometheus metrics). Submit / status /
//! cancel / wait / shutdown work identically on both, including
//! cooperative **mid-job cancellation** through the pipeline's
//! checkpoints, because both delegate to one shared queue-fronting
//! request layer.
//!
//! ## Manifest format
//!
//! A manifest is a TOML-subset or JSON document (see [`manifest`] for
//! the full field reference and [`toml`] for the supported TOML slice):
//! fleet knobs (`slots`, `threads`, `memory_budget_mib`) plus a list of
//! jobs, each either *synthetic* (`dataset`/`seed`/`scale`, a benchmark
//! profile generated in-process) or *file-based* (`first`/`second` KB
//! paths with an optional `truth` file), with optional per-job matching
//! overrides (`theta`, `k`, `purge`).
//!
//! ## Admission policy
//!
//! Jobs are admitted strictly in submission order under a memory
//! budget (manifest order in batch mode, socket arrival order in
//! daemon mode).
//! Each job's footprint is estimated **before any input is loaded** —
//! from the profile's entity budget for synthetic jobs, from on-disk
//! file sizes for file jobs — and a job waits until the in-flight
//! estimates leave room. The head job is always admitted when nothing
//! else runs, so an over-budget job degrades to running alone rather
//! than deadlocking the fleet. One poisoned job (corrupt input, bad
//! config, a panic) fails alone; the fleet completes.
//!
//! ## Supervised lifecycle
//!
//! Jobs run under supervision (see the state diagram in [`scheduler`]):
//! per-job deadlines (`timeout_ms`) expire at the pipeline's
//! cooperative checkpoints into a `TimedOut` report; transient failures
//! (I/O errors, timeouts) re-enter the queue with exponential backoff
//! and deterministic jitter under a `max_retries` budget (default `0`:
//! one attempt, bit-identical to the historical behavior); a job that
//! panics twice is quarantined as `Poisoned`; an optional RSS watchdog
//! ([`ServeOptions::rss_kill_factor`]) kills jobs that grow past a
//! multiple of their admission estimate (`KilledOverBudget`); and the
//! daemon sheds submissions past a queue-depth or admitted-bytes
//! high-water mark (HTTP `429` + `Retry-After`, line-JSON
//! `"retryable":true`) instead of collapsing under overload.
//!
//! ## Determinism
//!
//! Per-job outputs are bit-identical regardless of fleet size, thread
//! count or scheduling order: the pipeline itself is bit-identical
//! across executors ([`minoan_core::MinoanEr::run_with`]), jobs share no
//! mutable state, and reports are assembled in manifest order.
//! [`JobReport::fingerprint`] canonicalizes exactly the deterministic
//! part of a result, which is what the equivalence tests compare.

#![warn(missing_docs)]

pub mod daemon;
mod events;
pub mod http;
mod intake;
pub mod manifest;
pub mod registry;
pub mod report;
pub mod scheduler;
pub mod telemetry;
pub mod toml;

pub use daemon::{run_daemon, run_server, Frontends};
pub use http::{prometheus_metrics, run_http, HttpOptions};
pub use registry::{IndexEntry, IndexRegistry, RegistryError};

pub use manifest::{JobInput, JobSpec, Manifest};
pub use report::{current_rss_bytes, fnv1a, peak_rss_bytes, JobReport, JobStatus, ServeReport};
pub use scheduler::{
    load_kb_file, load_truth_file, run_batch, run_batch_streaming, CancelOutcome, CancelToken,
    Cancelled, JobId, JobPhase, JobQueue, JobSnapshot, QueueStats, ServeOptions, SubmitError,
    DEFAULT_SHED_QUEUE_DEPTH, POISON_PANICS, RETRY_BACKOFF_BASE, RETRY_BACKOFF_CAP,
    SHED_BYTES_FACTOR,
};
