//! The non-iterative MinoanER matching pipeline.
//!
//! `M(ei, ej) = (H1 ∨ H2 ∨ H3) ∧ H4` over the pruned disjunctive
//! blocking graph (paper Definition 1). Every similarity is computed
//! once, from blocks; no matching decision is ever revisited.

use std::time::{Duration, Instant};

use minoan_blocking::{
    name_blocking_with, purge_with_exec, token_blocking_with, BlockCollection, PurgeReport,
};
use minoan_exec::{CancelToken, Cancelled, Executor};
use minoan_kb::{EntityId, FxHashSet, KbPair, KbSide, Matching};
use minoan_text::{TokenizedPair, Tokenizer};

use crate::config::MinoanConfig;
use crate::heuristics::{
    h1_name_matches, h2_value_matches_with, h3_rank_matches_with, h4_reciprocal_batch,
};
use crate::importance::{entity_names_with, top_neighbors_with};
use crate::simindex::SimilarityIndex;

/// Per-stage counters and timings of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Matches contributed by H1 (names).
    pub h1_matches: usize,
    /// Matches contributed by H2 (strong value similarity).
    pub h2_matches: usize,
    /// Matches contributed by H3 (rank aggregation).
    pub h3_matches: usize,
    /// Pairs discarded by H4 (reciprocity).
    pub h4_removed: usize,
    /// Name blocks (`|BN|`).
    pub name_blocks: usize,
    /// Name-block comparisons (`||BN||`).
    pub name_comparisons: u64,
    /// Token blocks after purging (`|BT|`).
    pub token_blocks: usize,
    /// Token-block comparisons after purging (`||BT||`).
    pub token_comparisons: u64,
    /// The Block Purging report, if purging ran.
    pub purge: Option<PurgeReport>,
    /// Wall-clock time per stage.
    pub timings: Timings,
}

/// Wall-clock stage timings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timings {
    /// Tokenization of both KBs.
    pub tokenize: Duration,
    /// Name extraction + name blocking + H1.
    pub names_h1: Duration,
    /// Token blocking + purging.
    pub blocking: Duration,
    /// Similarity-index construction.
    pub similarities: Duration,
    /// H2 + H3 + H4.
    pub matching: Duration,
}

impl Timings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.tokenize + self.names_h1 + self.blocking + self.similarities + self.matching
    }
}

/// The result of a pipeline run.
#[derive(Debug, Clone)]
pub struct MatchOutput {
    /// The final matching (after H4).
    pub matching: Matching,
    /// Stage counters and timings.
    pub report: PipelineReport,
}

/// A pipeline run that additionally retains the build-once structures a
/// persistent index artifact needs: the tokenized pair, both block
/// collections and the similarity index. Produced by
/// [`MinoanEr::run_cancellable_indexed`]; the `output` field is exactly
/// what [`MinoanEr::run_cancellable`] would have returned for the same
/// inputs, so persisting an index never perturbs the matching.
pub struct IndexedOutput {
    /// The final matching and stage report.
    pub output: MatchOutput,
    /// Tokenization and blocking intermediates.
    pub artifacts: BlockingArtifacts,
    /// The similarity index the heuristics ran against.
    pub index: SimilarityIndex,
}

/// Intermediate artifacts of the pipeline, exposed for the benchmark
/// harness (Table II needs the block collections, BSL consumes the same
/// `BN ∪ BT` input as MinoanER).
pub struct BlockingArtifacts {
    /// The tokenized pair with the shared dictionary.
    pub tokens: TokenizedPair,
    /// Name blocks `BN`.
    pub name_blocks: BlockCollection,
    /// Token blocks `BT` (purged when the config says so).
    pub token_blocks: BlockCollection,
    /// The purge report, if purging ran.
    pub purge: Option<PurgeReport>,
    /// Extracted entity names per side.
    pub names: [Vec<Vec<String>>; 2],
    /// Wall-clock time spent tokenizing both KBs, measured separately so
    /// the pipeline can report it apart from blocking proper.
    pub tokenize_time: Duration,
}

/// A debug-level pipeline-stage span; stage timings for the report are
/// measured by their own `Instant` clocks, so observation and
/// measurement never share state.
fn stage_span(name: &'static str) -> minoan_obs::trace::Span {
    minoan_obs::trace::span(minoan_obs::Level::Debug, name, String::new)
}

/// Builds the schema-agnostic blocking input (`BN`, `BT`) for a pair,
/// running the block construction and purging statistics on the
/// executor selected by `config`.
pub fn build_blocks(pair: &KbPair, config: &MinoanConfig) -> BlockingArtifacts {
    build_blocks_with(pair, config, &config.executor())
}

/// Like [`build_blocks`], but borrowing `exec` instead of constructing
/// one from the config: the serving layer schedules many concurrent
/// pipeline runs and owns the thread policy (how many workers each job
/// gets), so the pipeline itself must be re-entrant with respect to the
/// executor. The executor fields of `config` are ignored.
pub fn build_blocks_with(
    pair: &KbPair,
    config: &MinoanConfig,
    exec: &Executor,
) -> BlockingArtifacts {
    build_blocks_cancellable(pair, config, exec, &CancelToken::new())
        .expect("a fresh token is never cancelled")
}

/// Like [`build_blocks_with`], but observing `cancel` at cooperative
/// checkpoints **between executor waves** (tokenization, name
/// extraction per side, name blocking, token blocking, purging) — and,
/// on the pool backend, between the quantum-bounded tasks *inside* each
/// wave. A cancelled build unwinds with [`Cancelled`] within one task
/// quantum of work and leaves no partial artifacts behind.
pub fn build_blocks_cancellable(
    pair: &KbPair,
    config: &MinoanConfig,
    exec: &Executor,
    cancel: &CancelToken,
) -> Result<BlockingArtifacts, Cancelled> {
    // Hand the token to the executor so pool waves can abort mid-wave;
    // `catch_cancel` folds that unwind into the same `Err(Cancelled)`
    // the between-wave checkpoints produce.
    let exec = &exec.clone().with_cancel(cancel.clone());
    minoan_exec::catch_cancel(|| {
        let tokenizer = Tokenizer::default();
        cancel.checkpoint()?;
        let t_tok = Instant::now();
        let tokens = {
            let _s = stage_span("stage.tokenize");
            TokenizedPair::build_with(pair, &tokenizer, exec)
        };
        let tokenize_time = t_tok.elapsed();
        cancel.checkpoint()?;
        let (names1, names2) = {
            let _s = stage_span("stage.names");
            let names1 = entity_names_with(&pair.first, config.name_attrs_k, exec);
            cancel.checkpoint()?;
            let names2 = entity_names_with(&pair.second, config.name_attrs_k, exec);
            (names1, names2)
        };
        cancel.checkpoint()?;
        let (bn, _) = {
            let _s = stage_span("stage.name_blocking");
            name_blocking_with(&names1, &names2, exec)
        };
        cancel.checkpoint()?;
        let bt_raw = {
            let _s = stage_span("stage.token_blocking");
            token_blocking_with(&tokens, exec)
        };
        let (bt, purge) = if config.purge_blocks {
            cancel.checkpoint()?;
            let _s = stage_span("stage.purge");
            let (purged, report) = purge_with_exec(&bt_raw, config.purge_smoothing, exec);
            (purged, Some(report))
        } else {
            (bt_raw, None)
        };
        Ok(BlockingArtifacts {
            tokens,
            name_blocks: bn,
            token_blocks: bt,
            purge,
            names: [names1, names2],
            tokenize_time,
        })
    })
}

/// Outcome of the shared H1–H4 matching phase.
pub(crate) struct MatchingPhase {
    /// The final matching (after H4).
    pub matching: Matching,
    /// Matches contributed by H1.
    pub h1_matches: usize,
    /// Matches contributed by H2.
    pub h2_matches: usize,
    /// Matches contributed by H3.
    pub h3_matches: usize,
    /// Pairs discarded by H4.
    pub h4_removed: usize,
    /// Wall-clock time of H1.
    pub names_h1: Duration,
    /// Wall-clock time of H2 + H3 + H4.
    pub matching_time: Duration,
}

/// `(H1 ∨ H2 ∨ H3) ∧ H4` over a similarity index and name blocks —
/// shared verbatim by the one-shot pipeline and the delta engine, so a
/// patched index decides matches with exactly the code a from-scratch
/// rebuild runs. Insertion order (H1, then H2, then H3; H4 retains in
/// that order) is part of the contract: `Matching` iterates in
/// insertion order and the persisted fingerprint hashes that order.
pub(crate) fn matching_phase(
    name_blocks: &BlockCollection,
    idx: &SimilarityIndex,
    smaller: KbSide,
    n_smaller: usize,
    config: &MinoanConfig,
    exec: &Executor,
    cancel: &CancelToken,
) -> Result<MatchingPhase, Cancelled> {
    // H1: unique-name matches.
    let t0 = Instant::now();
    let h1 = h1_name_matches(name_blocks);
    let names_h1 = t0.elapsed();

    let mut matched: [FxHashSet<EntityId>; 2] = [FxHashSet::default(), FxHashSet::default()];
    let mut matching = Matching::new();
    for &(e1, e2) in &h1 {
        matching.insert(e1, e2);
        matched[0].insert(e1);
        matched[1].insert(e2);
    }

    // H2 on the smaller KB.
    cancel.checkpoint()?;
    let t0 = Instant::now();
    let h2 = h2_value_matches_with(idx, smaller, n_smaller, [&matched[0], &matched[1]], exec);
    for &(e1, e2) in &h2 {
        matching.insert(e1, e2);
        matched[0].insert(e1);
        matched[1].insert(e2);
    }

    // H3 on what is left.
    cancel.checkpoint()?;
    let h3 = h3_rank_matches_with(
        idx,
        smaller,
        n_smaller,
        config.candidates_k,
        config.theta,
        [&matched[0], &matched[1]],
        exec,
    );
    for &(e1, e2) in &h3 {
        matching.insert(e1, e2);
    }

    // H4: reciprocity filter over everything — evaluated in parallel
    // (pure reads over the index), applied in insertion order.
    cancel.checkpoint()?;
    let before = matching.len();
    let pairs: Vec<(EntityId, EntityId)> = matching.iter().collect();
    let keep = h4_reciprocal_batch(idx, config.candidates_k, &pairs, exec);
    let mut keep_flags = keep.iter();
    matching.retain(|_, _| *keep_flags.next().expect("one flag per pair"));
    let h4_removed = before - matching.len();
    Ok(MatchingPhase {
        h1_matches: h1.len(),
        h2_matches: h2.len(),
        h3_matches: h3.len(),
        h4_removed,
        matching,
        names_h1,
        matching_time: t0.elapsed(),
    })
}

/// The MinoanER matcher.
#[derive(Debug, Clone, Default)]
pub struct MinoanEr {
    config: MinoanConfig,
}

impl MinoanEr {
    /// Creates a matcher, validating the configuration.
    pub fn new(config: MinoanConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Creates a matcher with the paper's default parameters.
    pub fn with_defaults() -> Self {
        Self::default()
    }

    /// The active configuration.
    pub fn config(&self) -> &MinoanConfig {
        &self.config
    }

    /// Resolves `pair`, returning the matching and a stage report.
    pub fn run(&self, pair: &KbPair) -> MatchOutput {
        self.run_with(pair, &self.config.executor())
    }

    /// Like [`MinoanEr::run`], but borrowing `exec` instead of building
    /// one from the config. This is the re-entrant entry point the
    /// serving layer uses: many jobs share one process, each handed an
    /// executor sized by the fleet scheduler, while the matching
    /// parameters still come from this matcher's config. Results are
    /// bit-identical across executors and thread counts.
    pub fn run_with(&self, pair: &KbPair, exec: &Executor) -> MatchOutput {
        self.run_cancellable(pair, exec, &CancelToken::new())
            .expect("a fresh token is never cancelled")
    }

    /// Like [`MinoanEr::run_with`], but observing `cancel` at
    /// cooperative checkpoints **between executor waves**: after every
    /// blocking stage (see [`build_blocks_cancellable`]), after H1,
    /// between the top-neighbor passes, after the similarity-index
    /// build, and between each of the H2 / H3 / H4 scans. On the pool
    /// backend the token is additionally observed between the
    /// quantum-bounded tasks *inside* each wave, so cancellation latency
    /// is one task quantum rather than one unbounded wave; either way a
    /// cancelled run unwinds with [`Cancelled`], produces no partial
    /// matching, and never merges a torn wave — the job's wave workers
    /// are all joined by the time the error propagates. This is what
    /// makes mid-job cancellation in the serving layer safe.
    pub fn run_cancellable(
        &self,
        pair: &KbPair,
        exec: &Executor,
        cancel: &CancelToken,
    ) -> Result<MatchOutput, Cancelled> {
        // As in `build_blocks_cancellable`: pool waves observe the token
        // between task quanta and abort by unwinding; fold that unwind
        // into the checkpoint error here at the stage boundary.
        let exec = &exec.clone().with_cancel(cancel.clone());
        minoan_exec::catch_cancel(|| {
            self.run_cancellable_inner(pair, exec, cancel)
                .map(|indexed| indexed.output)
        })
    }

    /// Like [`MinoanEr::run_cancellable`], but returning the
    /// [`IndexedOutput`] that keeps the tokenized pair, block
    /// collections and similarity index alive for persistence. This is
    /// the same code path as `run_cancellable` — the matching is
    /// bit-identical; only what survives the run differs.
    pub fn run_cancellable_indexed(
        &self,
        pair: &KbPair,
        exec: &Executor,
        cancel: &CancelToken,
    ) -> Result<IndexedOutput, Cancelled> {
        let exec = &exec.clone().with_cancel(cancel.clone());
        minoan_exec::catch_cancel(|| self.run_cancellable_inner(pair, exec, cancel))
    }

    fn run_cancellable_inner(
        &self,
        pair: &KbPair,
        exec: &Executor,
        cancel: &CancelToken,
    ) -> Result<IndexedOutput, Cancelled> {
        let mut report = PipelineReport::default();

        // Tokenize + block. `build_blocks_cancellable` measures
        // tokenization on its own clock, so blocking time excludes it.
        let t0 = Instant::now();
        let artifacts = build_blocks_cancellable(pair, &self.config, exec, cancel)?;
        report.timings.tokenize = artifacts.tokenize_time;
        report.timings.blocking = t0.elapsed().saturating_sub(artifacts.tokenize_time);
        report.name_blocks = artifacts.name_blocks.len();
        report.name_comparisons = artifacts.name_blocks.total_comparisons();
        report.token_blocks = artifacts.token_blocks.len();
        report.token_comparisons = artifacts.token_blocks.total_comparisons();
        report.purge = artifacts.purge.clone();

        // Similarity index over the purged token blocks.
        cancel.checkpoint()?;
        let t0 = Instant::now();
        let sim_span = stage_span("stage.similarities");
        let tn1 = top_neighbors_with(
            &pair.first,
            self.config.top_relations_n,
            self.config.max_top_neighbors,
            exec,
        );
        cancel.checkpoint()?;
        let tn2 = top_neighbors_with(
            &pair.second,
            self.config.top_relations_n,
            self.config.max_top_neighbors,
            exec,
        );
        cancel.checkpoint()?;
        let idx = SimilarityIndex::build_with(
            &artifacts.token_blocks,
            &artifacts.tokens,
            [&tn1, &tn2],
            exec,
        );
        report.timings.similarities = t0.elapsed();
        drop(sim_span);

        // H1 ∨ H2 ∨ H3, then the H4 reciprocity filter — the phase the
        // delta engine re-runs against a patched index.
        let smaller = pair.smaller_side();
        let n_smaller = pair.kb(smaller).entity_count();
        let match_span = stage_span("stage.matching");
        let phase = matching_phase(
            &artifacts.name_blocks,
            &idx,
            smaller,
            n_smaller,
            &self.config,
            exec,
            cancel,
        )?;
        drop(match_span);
        report.h1_matches = phase.h1_matches;
        report.h2_matches = phase.h2_matches;
        report.h3_matches = phase.h3_matches;
        report.h4_removed = phase.h4_removed;
        report.timings.names_h1 = phase.names_h1;
        report.timings.matching = phase.matching_time;

        Ok(IndexedOutput {
            output: MatchOutput {
                matching: phase.matching,
                report,
            },
            artifacts,
            index: idx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_kb::KbBuilder;

    /// Two restaurant-style KBs with names, values and an address
    /// relation; r0/r1/r2 match their counterparts.
    fn restaurant_pair() -> KbPair {
        let mut a = KbBuilder::new("E1");
        for (i, (name, street)) in [
            ("Kri Kri Taverna", "12 Minos Avenue"),
            ("Labyrinth Grill", "3 Ariadne Street"),
            ("Phaistos Disk Cafe", "77 Festos Road"),
        ]
        .iter()
        .enumerate()
        {
            let r = format!("a:r{i}");
            a.add_literal(&r, "name", name);
            a.add_literal(&r, "cuisine", "greek traditional");
            a.add_uri(&r, "address", &format!("a:addr{i}"));
            a.add_literal(&format!("a:addr{i}"), "street", street);
        }
        let mut b = KbBuilder::new("E2");
        for (i, (name, street)) in [
            ("Kri Kri Taverna", "12 Minos Ave"),
            ("Labyrinth Grill", "3 Ariadne St"),
            ("Phaistos Disk Cafe", "77 Festos Rd"),
        ]
        .iter()
        .enumerate()
        {
            let r = format!("b:r{i}");
            b.add_literal(&r, "title", name);
            b.add_literal(&r, "category", "restaurant");
            b.add_uri(&r, "location", &format!("b:addr{i}"));
            b.add_literal(&format!("b:addr{i}"), "street", street);
        }
        KbPair::new(a.finish(), b.finish())
    }

    #[test]
    fn end_to_end_resolves_identical_names() {
        let pair = restaurant_pair();
        let out = MinoanEr::with_defaults().run(&pair);
        // All three restaurants match their counterparts.
        for i in 0..3u32 {
            let e1 = pair.first.entity_by_uri(&format!("a:r{i}")).unwrap();
            let e2 = pair.second.entity_by_uri(&format!("b:r{i}")).unwrap();
            assert!(
                out.matching.contains(e1, e2),
                "restaurant {i} not matched; got {:?}",
                out.matching.iter().collect::<Vec<_>>()
            );
        }
        assert!(out.report.h1_matches >= 3, "names should drive H1");
    }

    #[test]
    fn report_counts_are_consistent() {
        let pair = restaurant_pair();
        let out = MinoanEr::with_defaults().run(&pair);
        let r = &out.report;
        assert_eq!(
            out.matching.len() + r.h4_removed,
            r.h1_matches + r.h2_matches + r.h3_matches
        );
        assert!(r.token_blocks > 0);
        assert!(r.name_blocks > 0);
        assert!(r.purge.is_some());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let c = MinoanConfig {
            theta: 2.0,
            ..MinoanConfig::default()
        };
        assert!(MinoanEr::new(c).is_err());
    }

    #[test]
    fn empty_pair_produces_empty_matching() {
        let pair = KbPair::new(KbBuilder::new("x").finish(), KbBuilder::new("y").finish());
        let out = MinoanEr::with_defaults().run(&pair);
        assert!(out.matching.is_empty());
        assert_eq!(out.report.h1_matches, 0);
    }

    #[test]
    fn kb_without_relations_still_matches_on_values() {
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:0", "name", "unique zanzibar artifact");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:0", "label", "unique zanzibar artifact museum");
        let pair = KbPair::new(a.finish(), b.finish());
        let out = MinoanEr::with_defaults().run(&pair);
        let e1 = pair.first.entity_by_uri("a:0").unwrap();
        let e2 = pair.second.entity_by_uri("b:0").unwrap();
        assert!(out.matching.contains(e1, e2));
    }

    #[test]
    fn tokenize_time_is_reported_separately_from_blocking() {
        let pair = restaurant_pair();
        let out = MinoanEr::with_defaults().run(&pair);
        let t = &out.report.timings;
        // Tokenization of a non-empty pair takes measurable time and is
        // no longer folded into the blocking stage.
        assert!(t.tokenize > Duration::ZERO, "tokenize must be measured");
        assert!(t.total() >= t.tokenize + t.blocking);
        let art = build_blocks(&pair, &MinoanConfig::default());
        assert!(art.tokenize_time > Duration::ZERO);
    }

    #[test]
    fn sequential_and_parallel_executors_agree() {
        let pair = restaurant_pair();
        let seq_cfg = MinoanConfig {
            executor: minoan_exec::ExecutorKind::Sequential,
            ..MinoanConfig::default()
        };
        let seq = MinoanEr::new(seq_cfg).unwrap().run(&pair);
        for threads in [2, 5] {
            let par_cfg = MinoanConfig {
                executor: minoan_exec::ExecutorKind::Rayon,
                threads,
                ..MinoanConfig::default()
            };
            let par = MinoanEr::new(par_cfg).unwrap().run(&pair);
            assert_eq!(
                seq.matching.iter().collect::<Vec<_>>(),
                par.matching.iter().collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn purging_can_be_disabled() {
        let pair = restaurant_pair();
        let c = MinoanConfig {
            purge_blocks: false,
            ..MinoanConfig::default()
        };
        let out = MinoanEr::new(c).unwrap().run(&pair);
        assert!(out.report.purge.is_none());
        assert!(!out.matching.is_empty());
    }

    #[test]
    fn build_blocks_exposes_bn_and_bt() {
        let pair = restaurant_pair();
        let art = build_blocks(&pair, &MinoanConfig::default());
        assert!(art.name_blocks.len() >= 3);
        assert!(art.token_blocks.len() > art.name_blocks.len());
        assert_eq!(art.names[0].len(), pair.first.entity_count());
        assert_eq!(art.names[1].len(), pair.second.entity_count());
    }

    #[test]
    fn pre_cancelled_run_unwinds_before_doing_work() {
        let pair = restaurant_pair();
        let cancel = CancelToken::new();
        cancel.cancel();
        let exec = Executor::sequential();
        let matcher = MinoanEr::with_defaults();
        assert!(matches!(
            matcher.run_cancellable(&pair, &exec, &cancel),
            Err(Cancelled)
        ));
        assert!(build_blocks_cancellable(&pair, matcher.config(), &exec, &cancel).is_err());
    }

    #[test]
    fn uncancelled_run_cancellable_matches_run_with() {
        let pair = restaurant_pair();
        let matcher = MinoanEr::with_defaults();
        let exec = Executor::sequential();
        let plain = matcher.run_with(&pair, &exec);
        let cancellable = matcher
            .run_cancellable(&pair, &exec, &CancelToken::new())
            .unwrap();
        assert_eq!(
            plain.matching.iter().collect::<Vec<_>>(),
            cancellable.matching.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn mid_run_cancel_from_another_thread_is_observed() {
        // Cancel while runs are in flight: every run either completes
        // (cancel arrived after its last checkpoint) or unwinds with
        // `Cancelled` — it never panics or hangs.
        let pair = restaurant_pair();
        let matcher = MinoanEr::with_defaults();
        let cancel = CancelToken::new();
        let exec = Executor::sequential();
        let saw_cancelled = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| loop {
                // Terminates: once the token flips, the next run fails
                // at its first checkpoint.
                if matcher.run_cancellable(&pair, &exec, &cancel).is_err() {
                    saw_cancelled.store(true, std::sync::atomic::Ordering::SeqCst);
                    break;
                }
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            cancel.cancel();
        });
        assert!(
            saw_cancelled.load(std::sync::atomic::Ordering::SeqCst),
            "a run after the cancel must observe a checkpoint"
        );
    }

    #[test]
    fn h3_contributes_when_values_are_weak_but_neighbors_strong() {
        // Movies share only a weak title token; their actors match
        // strongly. H3's neighbor evidence must link the movies.
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:m", "title", "the film");
        a.add_uri("a:m", "starring", "a:p");
        a.add_literal("a:p", "name", "melina mercouri unique");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:m", "label", "film");
        b.add_uri("b:m", "actor", "b:p");
        b.add_literal("b:p", "fullname", "unique melina mercouri");
        let pair = KbPair::new(a.finish(), b.finish());
        let out = MinoanEr::with_defaults().run(&pair);
        let m1 = pair.first.entity_by_uri("a:m").unwrap();
        let m2 = pair.second.entity_by_uri("b:m").unwrap();
        assert!(out.matching.contains(m1, m2));
    }
}
