//! Shared plumbing for the trajectory-emitting benches: thread sweeps,
//! smoke mode, peak-RSS sampling, the common JSON schema and sanity
//! checks on the emitted files.

use criterion::BenchResult;
use minoan_exec::{Executor, ExecutorKind};
use minoan_kb::Json;
use std::path::Path;

/// Peak resident set size of this process in bytes, where the platform
/// exposes it. The canonical implementation lives in the serving layer
/// (per-job RSS is a serving metric); the benches reuse it through this
/// re-export instead of keeping their own copy.
pub use minoan_serve::peak_rss_bytes;

/// Whether the bench runs in smoke mode (`MINOAN_BENCH_SMOKE=1`):
/// reduced scale and iterations, used by CI to validate the harness and
/// the emitted JSON without paying full measurement time.
pub fn smoke() -> bool {
    std::env::var("MINOAN_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Number of CPU cores available to this process.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The thread counts to sweep: 1/2/4/8, clamped to the available cores
/// and deduplicated. On a 1-core machine this is just `[1]` — the
/// hardware ceiling is recorded in the JSON rather than fabricated.
pub fn thread_sweep() -> Vec<usize> {
    let cores = available_cores();
    let mut sweep: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|t| t.min(cores))
        .collect();
    sweep.dedup();
    sweep
}

/// The benchmarked executors shared by the trajectory benches: the
/// sequential baseline plus one rayon executor per swept thread count,
/// labels carrying the thread count so emitted results are
/// self-describing (`threads_of` parses them back).
pub fn sweep_executors() -> Vec<(String, Executor)> {
    let mut execs = vec![("sequential".to_string(), Executor::sequential())];
    for t in thread_sweep() {
        execs.push((format!("rayon-{t}"), Executor::new(ExecutorKind::Rayon, t)));
    }
    execs
}

/// `full` normally, `smoke` under `MINOAN_BENCH_SMOKE=1` — the shared
/// scale/sample-count switch of the trajectory benches.
pub fn smoke_scaled<T>(full: T, smoke_value: T) -> T {
    if smoke() {
        smoke_value
    } else {
        full
    }
}

/// The header fields every trajectory file starts with: bench name,
/// dataset, scale, smoke flag, then the machine/sweep block
/// ([`machine_fields`]). Benches append their own speedup maps and
/// [`results_json`] and hand the lot to [`emit_checked`].
pub fn trajectory_fields(
    bench: &str,
    dataset: &str,
    scale: f64,
    sweep: &[usize],
) -> Vec<(String, Json)> {
    let mut fields: Vec<(String, Json)> = vec![
        ("bench".into(), Json::str(bench)),
        ("dataset".into(), Json::str(dataset)),
        ("scale".into(), Json::Num(scale)),
        ("smoke".into(), Json::Bool(smoke())),
    ];
    fields.extend(machine_fields(sweep));
    fields
}

/// Peak RSS as JSON (`null` when unavailable).
pub fn peak_rss_json() -> Json {
    match peak_rss_bytes() {
        Some(b) => Json::num(b as f64),
        None => Json::Null,
    }
}

/// The thread count a bench result ran with, parsed from its id
/// (`…/rayon-N`; everything else — the sequential baselines — is 1).
pub fn threads_of(id: &str) -> usize {
    id.rsplit_once("/rayon-")
        .and_then(|(_, t)| t.parse().ok())
        .unwrap_or(1)
}

/// Looks a result up by its full id.
pub fn find<'a>(results: &'a [BenchResult], id: &str) -> Option<&'a BenchResult> {
    results.iter().find(|r| r.id == id)
}

/// Per-thread-count speedup map of `par_id(t)` over the `baseline_id`
/// result (`null` where either side is missing).
pub fn speedup_map(
    results: &[BenchResult],
    sweep: &[usize],
    baseline_id: &str,
    par_id: impl Fn(usize) -> String,
) -> Json {
    let seq = find(results, baseline_id);
    Json::obj(sweep.iter().map(|&t| {
        let par = find(results, &par_id(t));
        let v = match (seq, par) {
            (Some(s), Some(p)) if p.median_ns > 0.0 => Json::Num(s.median_ns / p.median_ns),
            _ => Json::Null,
        };
        (t.to_string(), v)
    }))
}

/// The machine/sweep header fields shared by every trajectory file:
/// `available_cores`, `thread_sweep`, `rayon_threads` (the largest swept
/// count — what [`check_bench_json`] validates), `peak_rss_bytes`, and a
/// `note` documenting the 1-core hardware ceiling where it applies.
pub fn machine_fields(sweep: &[usize]) -> Vec<(String, Json)> {
    let max_threads = sweep.iter().copied().max().unwrap_or(1);
    vec![
        (
            "available_cores".into(),
            Json::num(available_cores() as f64),
        ),
        (
            "thread_sweep".into(),
            Json::arr(sweep.iter().map(|&t| Json::num(t as f64))),
        ),
        ("rayon_threads".into(), Json::num(max_threads as f64)),
        ("peak_rss_bytes".into(), peak_rss_json()),
        (
            "note".into(),
            if available_cores() == 1 {
                Json::str(
                    "1 CPU core available: the parallel backend cannot exceed 1 thread, \
                     so ~1.0x is the measured hardware ceiling on this machine",
                )
            } else {
                Json::Null
            },
        ),
    ]
}

/// The per-result array shared by every trajectory file, each entry
/// carrying the thread count it ran with.
pub fn results_json(results: &[BenchResult]) -> Json {
    Json::arr(results.iter().map(|r| {
        Json::obj([
            ("id", Json::str(&r.id)),
            ("rayon_threads", Json::num(threads_of(&r.id) as f64)),
            ("median_ns", Json::Num(r.median_ns)),
            ("mean_ns", Json::Num(r.mean_ns)),
            ("min_ns", Json::Num(r.min_ns)),
            ("iterations", Json::num(r.iterations as f64)),
        ])
    }))
}

/// Validates an emitted trajectory file: it must parse as JSON and its
/// `rayon_threads` must not be 1 when this machine has more cores — the
/// methodology bug that once recorded a "parallel" run pinned to one
/// thread. Returns a description of the first violation.
pub fn check_bench_json(path: &Path) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read emitted JSON: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("emitted JSON is malformed: {e}"))?;
    let threads = json
        .get("rayon_threads")
        .and_then(Json::as_usize)
        .ok_or("emitted JSON lacks a numeric rayon_threads field")?;
    if threads == 1 && available_cores() > 1 {
        return Err(format!(
            "emitted JSON reports rayon_threads: 1 but {} cores are available — \
             the bench did not sweep the parallel backend",
            available_cores()
        ));
    }
    Ok(())
}

/// Writes `json` to `<workspace root>/<file>`, re-reads it through
/// [`check_bench_json`] and terminates the bench with a non-zero exit on
/// violation. Returns the absolute path written.
pub fn emit_checked(manifest_dir: &str, file: &str, json: &Json) -> std::path::PathBuf {
    let path = Path::new(manifest_dir).join("../..").join(file);
    std::fs::write(&path, json.pretty()).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    if let Err(e) = check_bench_json(&path) {
        eprintln!("{}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
    path
}
