//! Incremental delta resolution: O(delta) re-resolution of a loaded
//! index.
//!
//! MinoanER is non-iterative — every similarity is a function of block
//! statistics and no matching decision is ever revisited — which makes
//! the pipeline unusually delta-friendly: an entity upsert or delete
//! only perturbs the blocks its tokens touch. [`IndexArtifact::apply_delta`]
//! exploits that:
//!
//! 1. **Mutate** the embedded pair through [`minoan_kb::delta::apply_op`]
//!    (the same code a reference rebuild of the final KB state uses),
//!    releasing and re-absorbing each dirty entity's tokens so the
//!    shared dictionary's entity frequencies stay exact.
//! 2. **Splice the blocks**: a [`MutableBlocks`] membership table is
//!    updated in O(dirty tokens · log block size) per op.
//! 3. **Bound the blast radius**: the affected first-side rows are the
//!    dirty entities plus the members of every *touched* token
//!    (membership changed on either side, so its weight changed) plus
//!    the members of every token whose purge-kept status *flipped*
//!    because the global threshold moved.
//! 4. **Recompute exactly there**: each affected row is re-accumulated
//!    over its kept tokens in lexicographic token-string order — the
//!    canonical block order of [`minoan_blocking::token_blocking_with`]
//!    — so its floating-point sums replay the rebuild's accumulation
//!    order bit for bit. Unaffected rows are spliced through unchanged.
//! 5. **Re-derive the rest**: transposes, the neighbor pass and the
//!    H1–H4 matching phase are linear in the pair count and run through
//!    the same functions as a full build, so the patched artifact is
//!    fingerprint-identical to a from-scratch rebuild of the final KB
//!    state — the correctness gate `tests/delta_equivalence.rs` checks.
//!
//! Persisting a patch ([`IndexArtifact::persist_patch`]) passes the
//! [`PATCH_FAULT_SITE`] fault point and then the container layer's
//! atomic temp-file + rename, so a crash mid-patch leaves the previous
//! artifact intact — never a torn file.

use std::io;
use std::path::Path;

use minoan_blocking::{name_blocking_with, threshold_from_cards, BlockKind, MutableBlocks};
use minoan_exec::{faults, CancelToken, Cancelled, Executor};
use minoan_kb::{Csr, DeltaOp, EntityId, FxHashMap, FxHashSet, Json, KbSide, TokenId};
use minoan_sim::token_weight;
use minoan_text::Tokenizer;

use crate::artifact::IndexArtifact;
use crate::config::MinoanConfig;
use crate::importance::{entity_names_with, top_neighbors_with};
use crate::pipeline::matching_phase;
use crate::simindex::{cand_cmp, Candidate, SimilarityIndex};

/// Fault-injection site armed at the start of a patch persist. Combined
/// with the atomic write underneath, an injected crash here must leave
/// the on-disk artifact fully old — the chaos suite's invariant.
pub const PATCH_FAULT_SITE: &str = "core.delta.apply";

/// Counters of one applied delta patch.
#[derive(Debug, Clone, Default)]
pub struct DeltaReport {
    /// Ops that mutated the pair.
    pub ops_applied: usize,
    /// Ops that were no-ops (deletes of unknown URIs).
    pub ops_noop: usize,
    /// First-side similarity rows recomputed (the O(delta) frontier).
    pub affected_rows: usize,
    /// Tokens whose block membership changed.
    pub touched_tokens: usize,
    /// Matches contributed by H1 after the patch.
    pub h1_matches: usize,
    /// Matches contributed by H2 after the patch.
    pub h2_matches: usize,
    /// Matches contributed by H3 after the patch.
    pub h3_matches: usize,
    /// Pairs discarded by H4 after the patch.
    pub h4_removed: usize,
    /// Pairs in the patched matching.
    pub matched_pairs: usize,
    /// The artifact's content version after the patch.
    pub content_version: u64,
}

impl IndexArtifact {
    /// Applies `ops` to the loaded index, re-resolving only the affected
    /// neighborhood. The result — matching, similarity index, blocks —
    /// is bit-identical to a from-scratch pipeline run over the mutated
    /// pair; the artifact's content version is bumped. Cancellation
    /// follows the pipeline contract: the artifact is only mutated
    /// beyond the cheap KB/token splice once the run is committed, and
    /// a cancelled run returns [`Cancelled`] without publishing a
    /// half-patched index... with one caveat handled by the caller: the
    /// in-memory artifact must be discarded after an error (the serving
    /// registry reloads from disk, which a failed patch never touched).
    pub fn apply_delta(
        &mut self,
        ops: &[DeltaOp],
        exec: &Executor,
        cancel: &CancelToken,
    ) -> Result<DeltaReport, Cancelled> {
        let exec = &exec.clone().with_cancel(cancel.clone());
        minoan_exec::catch_cancel(|| self.apply_delta_inner(ops, exec, cancel))
    }

    fn apply_delta_inner(
        &mut self,
        ops: &[DeltaOp],
        exec: &Executor,
        cancel: &CancelToken,
    ) -> Result<DeltaReport, Cancelled> {
        let config = Json::parse(&self.meta.config_json)
            .ok()
            .and_then(|j| MinoanConfig::from_json(&j).ok())
            .unwrap_or_default();
        let tokenizer = Tokenizer::default();
        cancel.checkpoint()?;

        // O(corpus) open: invert the token membership once.
        let mut blocks = MutableBlocks::from_tokenized(&self.tokens);
        let threshold_prev = config
            .purge_blocks
            .then(|| threshold_from_cards(blocks.cards(), config.purge_smoothing));
        cancel.checkpoint()?;

        // Sequentially splice each op into the KB pair, the token
        // dictionary and the membership table. `release` must run
        // *before* the mutation: the entity's current occurrence counts
        // are not recoverable from its deduplicated token row.
        let mut dirty: [FxHashSet<EntityId>; 2] = [FxHashSet::default(), FxHashSet::default()];
        let mut touched: FxHashSet<TokenId> = FxHashSet::default();
        let mut ops_applied = 0usize;
        let mut ops_noop = 0usize;
        for op in ops {
            let side = op.side();
            let old_row: Vec<TokenId> = match self.pair.kb(side).entity_by_uri(op.uri()) {
                Some(e) => self
                    .tokens
                    .release_entity(side, e, self.pair.kb(side), &tokenizer),
                None => Vec::new(),
            };
            let Some((side, e, _created)) = minoan_kb::delta::apply_op(&mut self.pair, op) else {
                ops_noop += 1;
                continue;
            };
            ops_applied += 1;
            dirty[side.index()].insert(e);
            let (new_row, new_tokens) =
                self.tokens
                    .absorb_entity(side, e, self.pair.kb(side), &tokenizer);
            for &t in &new_tokens {
                blocks.ensure_token(t);
            }
            // Both rows are sorted by token id; walk their difference.
            let (mut i, mut j) = (0, 0);
            while i < old_row.len() || j < new_row.len() {
                match (old_row.get(i), new_row.get(j)) {
                    (Some(&o), Some(&n)) if o == n => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&o), n) if n.is_none() || o < *n.expect("checked") => {
                        blocks.remove(side, o, e);
                        touched.insert(o);
                        i += 1;
                    }
                    (_, Some(&n)) => {
                        blocks.insert(side, n, e);
                        touched.insert(n);
                        j += 1;
                    }
                    _ => unreachable!("loop condition keeps one side non-empty"),
                }
            }
        }
        cancel.checkpoint()?;

        // A changed purge threshold can flip the kept status of blocks
        // no op touched; their members are affected too.
        let threshold_new = config
            .purge_blocks
            .then(|| threshold_from_cards(blocks.cards(), config.purge_smoothing));
        let mut affected_tokens = touched.clone();
        if let (Some(prev), Some(new)) = (threshold_prev, threshold_new) {
            if prev != new {
                let (lo, hi) = (prev.min(new), prev.max(new));
                for t in 0..blocks.token_count() as u32 {
                    let t = TokenId(t);
                    if let Some((c, _)) = blocks.card(t) {
                        if lo < c && c <= hi {
                            affected_tokens.insert(t);
                        }
                    }
                }
            }
        }
        let mut affected: FxHashSet<EntityId> = dirty[0].clone();
        for &t in &affected_tokens {
            affected.extend(blocks.members(KbSide::First, t).iter().copied());
        }
        let mut affected: Vec<EntityId> = affected.into_iter().collect();
        affected.sort_unstable();
        cancel.checkpoint()?;

        // Canonical token order: lexicographic by string, the order
        // `token_blocking_with` emits blocks in. Token ids differ
        // between this (appended) dictionary and a rebuild's
        // (first-seen) one; the string order is what both agree on.
        let dict = self.tokens.dict();
        let mut lex: Vec<TokenId> = (0..dict.len() as u32).map(TokenId).collect();
        lex.sort_unstable_by(|&a, &b| dict.token(a).cmp(dict.token(b)));
        let mut rank = vec![0u32; dict.len()];
        for (r, &t) in lex.iter().enumerate() {
            rank[t.index()] = r as u32;
        }

        let n1 = self.pair.first.entity_count();
        let n2 = self.pair.second.entity_count();
        let token_blocks = blocks.materialize(BlockKind::Token, &lex, threshold_new, n1, n2);
        cancel.checkpoint()?;

        // Recompute exactly the affected rows: accumulate each row over
        // its kept tokens in lex order — the same per-pair addition
        // sequence the sharded full build produces.
        let tokens = &self.tokens;
        let kept = |t: TokenId| match blocks.card(t) {
            Some((c, _)) => threshold_new.is_none_or(|max| c <= max),
            None => false,
        };
        let mut new_rows: Vec<Vec<Candidate>> = exec
            .map_parts(affected.len(), |range| {
                let mut out = Vec::with_capacity(range.len());
                let mut acc: FxHashMap<u32, f64> = FxHashMap::default();
                for i in range {
                    let e1 = affected[i];
                    acc.clear();
                    let mut toks: Vec<TokenId> = tokens
                        .tokens(KbSide::First, e1)
                        .iter()
                        .copied()
                        .filter(|&t| kept(t))
                        .collect();
                    toks.sort_unstable_by_key(|t| rank[t.index()]);
                    for t in toks {
                        let w = token_weight(dict.ef(KbSide::First, t), dict.ef(KbSide::Second, t));
                        for &e2 in blocks.members(KbSide::Second, t) {
                            *acc.entry(e2.0).or_insert(0.0) += w;
                        }
                    }
                    let mut row: Vec<Candidate> =
                        acc.iter().map(|(&e2, &v)| (EntityId(e2), v)).collect();
                    row.sort_unstable_by(cand_cmp);
                    out.push(row);
                }
                out
            })
            .concat();
        cancel.checkpoint()?;

        // Splice recomputed rows over the retained ones and re-derive
        // everything downstream of `value_firsts` with the same code a
        // full build runs.
        let old = self.index.value_csr(KbSide::First);
        let mut rows: Vec<Vec<Candidate>> = Vec::with_capacity(n1);
        let mut next = 0usize;
        for e in 0..n1 {
            if next < affected.len() && affected[next].index() == e {
                rows.push(std::mem::take(&mut new_rows[next]));
                next += 1;
            } else if e < old.rows() {
                rows.push(old.row(e).to_vec());
            } else {
                // New entities are always dirty, hence affected.
                unreachable!("appended entity {e} missing from the affected set");
            }
        }
        let tn1 = top_neighbors_with(
            &self.pair.first,
            config.top_relations_n,
            config.max_top_neighbors,
            exec,
        );
        cancel.checkpoint()?;
        let tn2 = top_neighbors_with(
            &self.pair.second,
            config.top_relations_n,
            config.max_top_neighbors,
            exec,
        );
        cancel.checkpoint()?;
        let index =
            SimilarityIndex::derive_from_value_firsts(Csr::from_rows(rows), n2, [&tn1, &tn2], exec);
        cancel.checkpoint()?;

        // Names, name blocking and the H1–H4 phase are linear stages;
        // re-running them whole through the shared functions keeps the
        // decision path literally identical to a rebuild's.
        let names1 = entity_names_with(&self.pair.first, config.name_attrs_k, exec);
        cancel.checkpoint()?;
        let names2 = entity_names_with(&self.pair.second, config.name_attrs_k, exec);
        cancel.checkpoint()?;
        let (name_blocks, _) = name_blocking_with(&names1, &names2, exec);
        let smaller = self.pair.smaller_side();
        let n_smaller = self.pair.kb(smaller).entity_count();
        let phase = matching_phase(
            &name_blocks,
            &index,
            smaller,
            n_smaller,
            &config,
            exec,
            cancel,
        )?;

        // Commit. Everything above this point only touched the KB/token
        // splice (which a discarded artifact never persists).
        self.name_blocks = name_blocks;
        self.token_blocks = token_blocks;
        self.index = index;
        self.matching = phase.matching;
        self.meta.entity_counts = [n1 as u64, n2 as u64];
        self.meta.token_count = self.tokens.dict().len() as u64;
        self.meta.name_block_count = self.name_blocks.len() as u64;
        self.meta.token_block_count = self.token_blocks.len() as u64;
        self.meta.value_pair_count = self.index.pair_count() as u64;
        self.meta.neighbor_pair_count = self.index.neighbor_pair_count() as u64;
        self.meta.matched_pairs = self.matching.len() as u64;
        self.meta.content_version += 1;
        Ok(DeltaReport {
            ops_applied,
            ops_noop,
            affected_rows: affected.len(),
            touched_tokens: touched.len(),
            h1_matches: phase.h1_matches,
            h2_matches: phase.h2_matches,
            h3_matches: phase.h3_matches,
            h4_removed: phase.h4_removed,
            matched_pairs: self.matching.len(),
            content_version: self.meta.content_version,
        })
    }

    /// Persists a patched artifact atomically: the [`PATCH_FAULT_SITE`]
    /// fault point fires first (so chaos runs crash *before* any bytes
    /// move), then the container writes to a temp file and renames — a
    /// reader never observes a torn artifact, only fully old or fully
    /// new.
    pub fn persist_patch(&mut self, path: &Path) -> io::Result<u64> {
        faults::point(PATCH_FAULT_SITE)?;
        let bytes = self.write_to(path)?;
        self.meta.file_bytes = bytes;
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MinoanEr;
    use minoan_kb::{KbBuilder, KbPair, Object};

    fn sample_pair() -> KbPair {
        let mut a = KbBuilder::new("E1");
        let mut b = KbBuilder::new("E2");
        for (i, name) in ["Kri Kri Taverna", "Labyrinth Grill", "Phaistos Cafe"]
            .iter()
            .enumerate()
        {
            a.add_literal(&format!("a:r{i}"), "name", name);
            a.add_uri(&format!("a:r{i}"), "address", &format!("a:addr{i}"));
            a.add_literal(&format!("a:addr{i}"), "street", &format!("{i} Minos Ave"));
            b.add_literal(&format!("b:r{i}"), "title", name);
            b.add_uri(&format!("b:r{i}"), "location", &format!("b:addr{i}"));
            b.add_literal(
                &format!("b:addr{i}"),
                "street",
                &format!("{i} Minos Avenue"),
            );
        }
        KbPair::new(a.finish(), b.finish())
    }

    fn build_artifact(pair: &KbPair) -> IndexArtifact {
        let matcher = MinoanEr::with_defaults();
        let indexed = matcher
            .run_cancellable_indexed(pair, &Executor::sequential(), &CancelToken::new())
            .unwrap();
        IndexArtifact::from_run("delta-test", pair, indexed, matcher.config())
    }

    /// The reference: mutate a clone of the pair with the same ops and
    /// run the whole pipeline from scratch.
    fn rebuild(pair: &KbPair, ops: &[DeltaOp]) -> IndexArtifact {
        let mut mutated = pair.clone();
        minoan_kb::delta::apply_to_pair(&mut mutated, ops);
        build_artifact(&mutated)
    }

    fn assert_bit_identical(patched: &IndexArtifact, reference: &IndexArtifact) {
        assert_eq!(patched.matched_uri_pairs(), reference.matched_uri_pairs());
        for side in [KbSide::First, KbSide::Second] {
            assert_eq!(
                patched.index().value_csr(side),
                reference.index().value_csr(side),
                "value CSR differs on {side:?}"
            );
            assert_eq!(
                patched.index().neighbor_csr(side),
                reference.index().neighbor_csr(side),
                "neighbor CSR differs on {side:?}"
            );
        }
        assert_eq!(patched.meta().matched_pairs, reference.meta().matched_pairs);
        assert_eq!(
            patched.meta().token_block_count,
            reference.meta().token_block_count
        );
    }

    fn upsert(side: KbSide, uri: &str, stmts: &[(&str, Object)]) -> DeltaOp {
        DeltaOp::Upsert {
            side,
            uri: uri.to_string(),
            statements: stmts
                .iter()
                .map(|(a, o)| (a.to_string(), o.clone()))
                .collect(),
        }
    }

    #[test]
    fn upserts_and_deletes_match_a_rebuild() {
        let pair = sample_pair();
        let mut artifact = build_artifact(&pair);
        let ops = vec![
            // Rename an existing restaurant on the first side.
            upsert(
                KbSide::First,
                "a:r1",
                &[
                    ("name", Object::Literal("Minotaur Grill".into())),
                    ("address", Object::Uri("a:addr1".into())),
                ],
            ),
            // Insert a brand-new matching pair.
            upsert(
                KbSide::First,
                "a:r9",
                &[("name", Object::Literal("Knossos Palace Bar".into()))],
            ),
            upsert(
                KbSide::Second,
                "b:r9",
                &[("title", Object::Literal("Knossos Palace Bar".into()))],
            ),
            // Delete a second-side entity.
            DeltaOp::Delete {
                side: KbSide::Second,
                uri: "b:r2".to_string(),
            },
        ];
        let report = artifact
            .apply_delta(&ops, &Executor::sequential(), &CancelToken::new())
            .unwrap();
        assert_eq!(report.ops_applied, 4);
        assert_eq!(report.ops_noop, 0);
        assert!(report.affected_rows > 0);
        assert_bit_identical(&artifact, &rebuild(&pair, &ops));
    }

    #[test]
    fn unknown_uri_delete_is_a_noop() {
        let pair = sample_pair();
        let mut artifact = build_artifact(&pair);
        let before = artifact.matched_uri_pairs();
        let ops = vec![DeltaOp::Delete {
            side: KbSide::First,
            uri: "a:ghost".to_string(),
        }];
        let report = artifact
            .apply_delta(&ops, &Executor::sequential(), &CancelToken::new())
            .unwrap();
        assert_eq!(report.ops_applied, 0);
        assert_eq!(report.ops_noop, 1);
        assert_eq!(artifact.matched_uri_pairs(), before);
    }

    #[test]
    fn content_version_bumps_per_patch() {
        let pair = sample_pair();
        let mut artifact = build_artifact(&pair);
        assert_eq!(artifact.meta().content_version, 1);
        let op = vec![upsert(
            KbSide::First,
            "a:r0",
            &[("name", Object::Literal("Kri Kri Taverna Anew".into()))],
        )];
        artifact
            .apply_delta(&op, &Executor::sequential(), &CancelToken::new())
            .unwrap();
        assert_eq!(artifact.meta().content_version, 2);
        artifact
            .apply_delta(&op, &Executor::sequential(), &CancelToken::new())
            .unwrap();
        assert_eq!(artifact.meta().content_version, 3);
    }

    #[test]
    fn patched_artifact_round_trips_through_disk() {
        let pair = sample_pair();
        let mut artifact = build_artifact(&pair);
        let ops = vec![DeltaOp::Delete {
            side: KbSide::First,
            uri: "a:r0".to_string(),
        }];
        artifact
            .apply_delta(&ops, &Executor::sequential(), &CancelToken::new())
            .unwrap();
        let dir = std::env::temp_dir().join("minoan-core-delta-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("patched-{}.idx", std::process::id()));
        artifact.persist_patch(&path).unwrap();
        let loaded = IndexArtifact::read_from(&path).unwrap();
        assert_eq!(loaded.meta().content_version, 2);
        assert_eq!(loaded.matched_uri_pairs(), artifact.matched_uri_pairs());
        assert_bit_identical(&loaded, &rebuild(&pair, &ops));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pre_cancelled_patch_unwinds() {
        let pair = sample_pair();
        let mut artifact = build_artifact(&pair);
        let cancel = CancelToken::new();
        cancel.cancel();
        let ops = vec![DeltaOp::Delete {
            side: KbSide::First,
            uri: "a:r0".to_string(),
        }];
        assert!(artifact
            .apply_delta(&ops, &Executor::sequential(), &cancel)
            .is_err());
    }

    #[test]
    fn repeated_upserts_of_the_same_entity_converge() {
        let pair = sample_pair();
        let mut artifact = build_artifact(&pair);
        let ops = vec![
            upsert(
                KbSide::First,
                "a:r0",
                &[("name", Object::Literal("transient garbage tokens".into()))],
            ),
            upsert(
                KbSide::First,
                "a:r0",
                &[
                    ("name", Object::Literal("Kri Kri Taverna".into())),
                    ("address", Object::Uri("a:addr0".into())),
                ],
            ),
        ];
        let report = artifact
            .apply_delta(&ops, &Executor::sequential(), &CancelToken::new())
            .unwrap();
        assert_eq!(report.ops_applied, 2);
        assert_bit_identical(&artifact, &rebuild(&pair, &ops));
    }
}
