//! Unique Mapping Clustering benchmarks: the clustering step shared by
//! BSL and SiGMa, at growing candidate-set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minoan_baselines::unique_mapping_clustering;
use minoan_kb::EntityId;

fn bench_umc(c: &mut Criterion) {
    let mut group = c.benchmark_group("umc");
    for n in [1_000usize, 10_000, 100_000] {
        let pairs: Vec<(EntityId, EntityId, f64)> = (0..n)
            .map(|i| {
                (
                    EntityId((i % 997) as u32),
                    EntityId((i % 1009) as u32),
                    ((i * 31) % 1000) as f64 / 1000.0,
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("pairs", n), &pairs, |b, p| {
            b.iter(|| unique_mapping_clustering(p, 0.2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_umc);
criterion_main!(benches);
