//! Connect-with-retry, shared by the example clients via `#[path]`
//! (this directory has no `main.rs`, so cargo does not treat it as an
//! example target).

use std::net::TcpStream;
use std::time::{Duration, Instant};

use minoaner::exec::backoff;

/// How long [`connect_retry`] keeps retrying a refused connection.
const CONNECT_RETRY_WINDOW: Duration = Duration::from_secs(10);

/// First retry delay; doubles per attempt via the scheduler's shared
/// backoff helper ([`backoff::delay`]), capped at [`RETRY_CAP`].
const RETRY_BASE: Duration = Duration::from_millis(50);
const RETRY_CAP: Duration = Duration::from_millis(400);

/// Connects with a bounded exponential backoff. The CI smokes start
/// the daemon and the client back to back, so the very first connect
/// can race the accept loop coming up; retrying `ConnectionRefused`
/// briefly makes that race unobservable without masking a daemon that
/// actually never starts.
pub fn connect_retry(addr: &str) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + CONNECT_RETRY_WINDOW;
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::ConnectionReset
                ) =>
            {
                let delay = backoff::delay(RETRY_BASE, attempt, RETRY_CAP);
                if Instant::now() + delay >= deadline {
                    return Err(e);
                }
                std::thread::sleep(delay);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}
