//! Vendored Fx hashing.
//!
//! The matching pipeline is dominated by hash-map operations keyed by small
//! interned integers (entity, attribute and token ids). The standard
//! library's SipHash is needlessly slow for such keys, so we vendor the
//! well-known Fx algorithm (as used by rustc) instead of pulling an extra
//! dependency. HashDoS resistance is irrelevant here: all keys are derived
//! from data we interned ourselves.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using the Fx hash algorithm.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using the Fx hash algorithm.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: a fast, non-cryptographic, multiply-and-rotate hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut bytes = bytes;
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}
