//! String interning.
//!
//! URIs, attribute names and tokens repeat heavily in Web KBs; interning
//! maps each distinct string to a dense `u32` id once, after which the
//! whole pipeline works on integers.

use crate::hash::FxHashMap;

/// A dense string interner: `intern` assigns ids in first-seen order,
/// `resolve` maps an id back to the string.
///
/// Ids are dense (`0..len`), so they can index parallel `Vec`s directly.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, u32>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty interner with capacity for `cap` distinct strings.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
            strings: Vec::with_capacity(cap),
        }
    }

    /// Interns `s`, returning its id. Idempotent.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        let a2 = i.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::with_capacity(4);
        let id = i.intern("http://example.org/x");
        assert_eq!(i.resolve(id), "http://example.org/x");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        i.intern("present");
        assert_eq!(i.get("present"), Some(0));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_preserves_first_seen_order() {
        let mut i = Interner::new();
        for s in ["c", "a", "b", "a"] {
            i.intern(s);
        }
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["c", "a", "b"]);
    }

    #[test]
    fn empty_interner_reports_empty() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
