//! Pipeline configuration.

use minoan_exec::{Executor, ExecutorKind};
use minoan_kb::Json;

/// Configuration of the MinoanER matching pipeline.
///
/// The defaults are the paper's robust setting (§IV): `K=15`, `N=3`,
/// `k=2`, `θ=0.6`, with Block Purging enabled, running on the parallel
/// executor with all available threads.
#[derive(Debug, Clone, PartialEq)]
pub struct MinoanConfig {
    /// `k`: number of most distinctive attributes per KB whose literal
    /// values serve as entity names (H1).
    pub name_attrs_k: usize,
    /// `K`: number of candidate matches kept per entity from values and
    /// from neighbors (H3 list size and H4 reciprocity window).
    pub candidates_k: usize,
    /// `N`: number of most important relations per KB defining
    /// `topNneighbors` (H3).
    pub top_relations_n: usize,
    /// `θ ∈ (0,1)`: trade-off between value-based (weight `θ`) and
    /// neighbor-based (weight `1-θ`) normalized ranks in H3.
    pub theta: f64,
    /// Whether to apply Block Purging to the token blocks.
    pub purge_blocks: bool,
    /// Smoothing factor for Block Purging.
    pub purge_smoothing: f64,
    /// Safety cap on `topNneighbors(e)` per entity. The paper leaves the
    /// set unbounded; the cap only guards against pathological hubs and
    /// is high enough to be inactive on the benchmark profiles.
    pub max_top_neighbors: usize,
    /// Which executor backend runs the hot stages (parsing, tokenizing,
    /// blocking, similarity indexing, matching). Results are
    /// bit-identical across backends.
    pub executor: ExecutorKind,
    /// Worker threads for the parallel backend (`0` = all available).
    pub threads: usize,
    /// Per-worker chunk size (KiB) of the streaming file parsers; the
    /// reader keeps roughly `ingest_chunk_kib × threads` KiB resident
    /// instead of the whole file.
    pub ingest_chunk_kib: usize,
}

impl Default for MinoanConfig {
    fn default() -> Self {
        Self {
            name_attrs_k: 2,
            candidates_k: 15,
            top_relations_n: 3,
            theta: 0.6,
            purge_blocks: true,
            purge_smoothing: minoan_blocking::DEFAULT_SMOOTHING,
            max_top_neighbors: 32,
            executor: ExecutorKind::Pool,
            threads: 0,
            ingest_chunk_kib: minoan_kb::parse::DEFAULT_CHUNK_BYTES >> 10,
        }
    }
}

impl MinoanConfig {
    /// Validates parameter ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.theta && self.theta < 1.0) {
            return Err(format!("theta must be in (0,1), got {}", self.theta));
        }
        if self.name_attrs_k == 0 {
            return Err("name_attrs_k must be at least 1".into());
        }
        if self.candidates_k == 0 {
            return Err("candidates_k must be at least 1".into());
        }
        if self.top_relations_n == 0 {
            return Err("top_relations_n must be at least 1".into());
        }
        if self.purge_smoothing < 1.0 {
            return Err(format!(
                "purge_smoothing must be >= 1, got {}",
                self.purge_smoothing
            ));
        }
        if self.max_top_neighbors == 0 {
            return Err("max_top_neighbors must be at least 1".into());
        }
        if self.ingest_chunk_kib == 0 {
            return Err("ingest_chunk_kib must be at least 1".into());
        }
        Ok(())
    }

    /// The executor the pipeline stages run on.
    pub fn executor(&self) -> Executor {
        Executor::new(self.executor, self.threads)
    }

    /// Streaming-parser options derived from [`MinoanConfig::ingest_chunk_kib`].
    pub fn stream_options(&self) -> minoan_kb::parse::StreamOptions {
        minoan_kb::parse::StreamOptions {
            chunk_bytes: self.ingest_chunk_kib.max(1) << 10,
        }
    }

    /// Serializes the configuration as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name_attrs_k", Json::num(self.name_attrs_k as f64)),
            ("candidates_k", Json::num(self.candidates_k as f64)),
            ("top_relations_n", Json::num(self.top_relations_n as f64)),
            ("theta", Json::Num(self.theta)),
            ("purge_blocks", Json::Bool(self.purge_blocks)),
            ("purge_smoothing", Json::Num(self.purge_smoothing)),
            (
                "max_top_neighbors",
                Json::num(self.max_top_neighbors as f64),
            ),
            ("executor", Json::str(self.executor.name())),
            ("threads", Json::num(self.threads as f64)),
            ("ingest_chunk_kib", Json::num(self.ingest_chunk_kib as f64)),
        ])
    }

    /// Deserializes a configuration from [`MinoanConfig::to_json`]
    /// output. Missing fields keep their defaults; unknown fields error.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let Json::Obj(fields) = json else {
            return Err("config must be a JSON object".into());
        };
        let mut config = MinoanConfig::default();
        for (key, value) in fields {
            let bad = || format!("bad value for {key}");
            match key.as_str() {
                "name_attrs_k" => config.name_attrs_k = value.as_usize().ok_or_else(bad)?,
                "candidates_k" => config.candidates_k = value.as_usize().ok_or_else(bad)?,
                "top_relations_n" => config.top_relations_n = value.as_usize().ok_or_else(bad)?,
                "theta" => config.theta = value.as_f64().ok_or_else(bad)?,
                "purge_blocks" => config.purge_blocks = value.as_bool().ok_or_else(bad)?,
                "purge_smoothing" => config.purge_smoothing = value.as_f64().ok_or_else(bad)?,
                "max_top_neighbors" => {
                    config.max_top_neighbors = value.as_usize().ok_or_else(bad)?
                }
                "executor" => {
                    config.executor = value.as_str().ok_or_else(bad)?.parse()?;
                }
                "threads" => config.threads = value.as_usize().ok_or_else(bad)?,
                "ingest_chunk_kib" => config.ingest_chunk_kib = value.as_usize().ok_or_else(bad)?,
                other => return Err(format!("unknown config field {other:?}")),
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = MinoanConfig::default();
        assert_eq!(c.name_attrs_k, 2);
        assert_eq!(c.candidates_k, 15);
        assert_eq!(c.top_relations_n, 3);
        assert!((c.theta - 0.6).abs() < 1e-12);
        assert!(c.purge_blocks);
        assert_eq!(c.executor, ExecutorKind::Pool);
        assert_eq!(c.threads, 0, "all available threads by default");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let default = MinoanConfig::default;
        for bad in [
            MinoanConfig {
                theta: 1.0,
                ..default()
            },
            MinoanConfig {
                theta: 0.0,
                ..default()
            },
            MinoanConfig {
                name_attrs_k: 0,
                ..default()
            },
            MinoanConfig {
                candidates_k: 0,
                ..default()
            },
            MinoanConfig {
                top_relations_n: 0,
                ..default()
            },
            MinoanConfig {
                purge_smoothing: 0.9,
                ..default()
            },
            MinoanConfig {
                ingest_chunk_kib: 0,
                ..default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn config_serializes_round_trip() {
        let c = MinoanConfig {
            theta: 0.37,
            executor: ExecutorKind::Sequential,
            threads: 4,
            purge_blocks: false,
            ..MinoanConfig::default()
        };
        let json = c.to_json().pretty();
        let back = MinoanConfig::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn from_json_rejects_unknown_fields_and_bad_values() {
        let bad = Json::parse(r#"{"no_such_knob": 1}"#).unwrap();
        assert!(MinoanConfig::from_json(&bad).is_err());
        let bad = Json::parse(r#"{"candidates_k": -3}"#).unwrap();
        assert!(MinoanConfig::from_json(&bad).is_err());
        let bad = Json::parse(r#"{"executor": "gpu"}"#).unwrap();
        assert!(MinoanConfig::from_json(&bad).is_err());
    }

    #[test]
    fn executor_instance_follows_config() {
        let mut c = MinoanConfig {
            executor: ExecutorKind::Sequential,
            ..MinoanConfig::default()
        };
        assert_eq!(c.executor().threads(), 1);
        c.executor = ExecutorKind::Rayon;
        c.threads = 7;
        assert_eq!(c.executor().threads(), 7);
    }
}
