//! Weighted vector models for the BSL baseline.
//!
//! BSL represents every entity by the token n-grams of its values,
//! weighted by TF or TF-IDF (paper §IV). This module builds those sparse
//! vectors over a feature space shared by both KBs.

use minoan_kb::{FxHashMap, Interner};

/// Feature weighting scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weighting {
    /// Term frequency: `count / doc_len`.
    Tf,
    /// TF × IDF with `idf = ln(1 + N / df)` over the union corpus.
    TfIdf,
}

impl Weighting {
    /// All supported weightings (for the BSL sweep).
    pub const ALL: [Weighting; 2] = [Weighting::Tf, Weighting::TfIdf];
}

impl std::fmt::Display for Weighting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Weighting::Tf => write!(f, "TF"),
            Weighting::TfIdf => write!(f, "TF-IDF"),
        }
    }
}

/// A sparse weighted feature vector, sorted by feature id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeightedVector {
    feats: Vec<(u32, f64)>,
    norm: f64,
    weight_sum: f64,
}

impl WeightedVector {
    /// The `(feature, weight)` entries, ascending by feature id.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.feats
    }

    /// Euclidean norm (cached for cosine).
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Sum of weights (cached for SiGMa-style weighted Jaccard).
    pub fn weight_sum(&self) -> f64 {
        self.weight_sum
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.feats.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.feats.is_empty()
    }

    /// Merges two sorted vectors, invoking `f(weight_a, weight_b)` for
    /// every feature present in either (absent side passes 0.0).
    pub fn merge_join(&self, other: &Self, mut f: impl FnMut(f64, f64)) {
        let (a, b) = (&self.feats, &other.feats);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    f(a[i].1, 0.0);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    f(0.0, b[j].1);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    f(a[i].1, b[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < a.len() {
            f(a[i].1, 0.0);
            i += 1;
        }
        while j < b.len() {
            f(0.0, b[j].1);
            j += 1;
        }
    }
}

/// Builds TF or TF-IDF vectors for the two sides of a corpus.
///
/// `docs_first[e]` / `docs_second[e]` are the feature strings (e.g. token
/// n-grams) of entity `e`. The feature space and document frequencies are
/// shared across the union of both sides, as BSL requires.
pub fn build_vectors(
    docs_first: &[Vec<String>],
    docs_second: &[Vec<String>],
    weighting: Weighting,
) -> (Vec<WeightedVector>, Vec<WeightedVector>) {
    let mut space = Interner::new();
    let mut counts_first: Vec<FxHashMap<u32, u32>> = Vec::with_capacity(docs_first.len());
    let mut counts_second: Vec<FxHashMap<u32, u32>> = Vec::with_capacity(docs_second.len());
    let mut df: Vec<u32> = Vec::new();
    let count_side = |docs: &[Vec<String>],
                      counts: &mut Vec<FxHashMap<u32, u32>>,
                      space: &mut Interner,
                      df: &mut Vec<u32>| {
        for doc in docs {
            let mut m: FxHashMap<u32, u32> = FxHashMap::default();
            for feat in doc {
                let id = space.intern(feat);
                *m.entry(id).or_insert(0) += 1;
            }
            for &id in m.keys() {
                if df.len() <= id as usize {
                    df.resize(id as usize + 1, 0);
                }
                df[id as usize] += 1;
            }
            counts.push(m);
        }
    };
    count_side(docs_first, &mut counts_first, &mut space, &mut df);
    count_side(docs_second, &mut counts_second, &mut space, &mut df);
    let n_docs = (docs_first.len() + docs_second.len()) as f64;
    let weigh = |counts: Vec<FxHashMap<u32, u32>>| -> Vec<WeightedVector> {
        counts
            .into_iter()
            .map(|m| {
                let doc_len: u32 = m.values().sum();
                let mut feats: Vec<(u32, f64)> = m
                    .into_iter()
                    .map(|(id, c)| {
                        let tf = c as f64 / doc_len.max(1) as f64;
                        let w = match weighting {
                            Weighting::Tf => tf,
                            Weighting::TfIdf => tf * (1.0 + n_docs / df[id as usize] as f64).ln(),
                        };
                        (id, w)
                    })
                    .collect();
                feats.sort_unstable_by_key(|&(id, _)| id);
                let norm = feats.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
                let weight_sum = feats.iter().map(|&(_, w)| w).sum();
                WeightedVector {
                    feats,
                    norm,
                    weight_sum,
                }
            })
            .collect()
    };
    (weigh(counts_first), weigh(counts_second))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(v: &[&[&str]]) -> Vec<Vec<String>> {
        v.iter()
            .map(|d| d.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn tf_weights_are_normalized_counts() {
        let (f, _) = build_vectors(&docs(&[&["a", "a", "b"]]), &docs(&[&["a"]]), Weighting::Tf);
        let v = &f[0];
        assert_eq!(v.len(), 2);
        let a = v.entries().iter().find(|&&(id, _)| id == 0).unwrap().1;
        let b = v.entries().iter().find(|&&(id, _)| id == 1).unwrap().1;
        assert!((a - 2.0 / 3.0).abs() < 1e-12);
        assert!((b - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn idf_downweights_ubiquitous_features() {
        let (f, _) = build_vectors(
            &docs(&[&["common", "rare"]]),
            &docs(&[&["common"], &["common"]]),
            Weighting::TfIdf,
        );
        let v = &f[0];
        let common = v.entries()[0].1;
        let rare = v.entries()[1].1;
        assert!(rare > common, "rare feature must outweigh ubiquitous one");
    }

    #[test]
    fn vectors_are_sorted_with_cached_aggregates() {
        let (f, _) = build_vectors(&docs(&[&["z", "a", "m"]]), &docs(&[]), Weighting::Tf);
        let v = &f[0];
        assert!(v.entries().windows(2).all(|w| w[0].0 < w[1].0));
        let norm: f64 = v.entries().iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        assert!((v.norm() - norm).abs() < 1e-12);
        assert!((v.weight_sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_doc_yields_empty_vector() {
        let (f, s) = build_vectors(&docs(&[&[]]), &docs(&[&["x"]]), Weighting::TfIdf);
        assert!(f[0].is_empty());
        assert_eq!(f[0].norm(), 0.0);
        assert_eq!(s[0].len(), 1);
    }

    #[test]
    fn merge_join_visits_all_features() {
        let (f, s) = build_vectors(&docs(&[&["a", "b"]]), &docs(&[&["b", "c"]]), Weighting::Tf);
        let mut visited = 0;
        let mut both = 0;
        f[0].merge_join(&s[0], |x, y| {
            visited += 1;
            if x > 0.0 && y > 0.0 {
                both += 1;
            }
        });
        assert_eq!(visited, 3);
        assert_eq!(both, 1);
    }
}
