//! Loading KBs from files: write two small TSV KBs plus a ground-truth
//! file, then resolve and evaluate — the workflow the `minoaner` CLI
//! wraps.
//!
//! Run with `cargo run --example custom_files`.

use minoaner::core::MinoanEr;
use minoaner::eval::MatchQuality;
use minoaner::kb::{parse, KbPair, Matching};

fn main() {
    let dir = std::env::temp_dir().join("minoaner-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let first = "\
g:1\tname\tlit\tKri Kri Taverna
g:1\tcuisine\tlit\tcretan traditional
g:1\taddress\turi\tg:a1
g:a1\tstreet\tlit\t12 Minos Avenue Heraklion
g:2\tname\tlit\tLabyrinth Grill
g:2\tcuisine\tlit\tgreek grill
";
    let second = "\
y:77\ttitle\tlit\tkri kri taverna
y:77\tcategory\tlit\ttraditional cretan food
y:77\tlocation\turi\ty:a77
y:a77\tstreetAddress\tlit\t12 minos ave heraklion
y:88\ttitle\tlit\tknossos snack bar
";
    std::fs::write(dir.join("first.tsv"), first).expect("write first");
    std::fs::write(dir.join("second.tsv"), second).expect("write second");

    let kb1 = parse::parse_tsv("E1", first).expect("parse first");
    let kb2 = parse::parse_tsv("E2", second).expect("parse second");
    let pair = KbPair::new(kb1, kb2);

    let truth = Matching::from_pairs([(
        pair.first.entity_by_uri("g:1").expect("g:1"),
        pair.second.entity_by_uri("y:77").expect("y:77"),
    )]);

    let out = MinoanEr::with_defaults().run(&pair);
    for (a, b) in out.matching.iter() {
        println!(
            "{} <=> {}",
            pair.first.entity_uri(a),
            pair.second.entity_uri(b)
        );
    }
    let q = MatchQuality::evaluate(&out.matching, &truth);
    println!(
        "precision {:.0}%  recall {:.0}%  F1 {:.0}%",
        q.precision() * 100.0,
        q.recall() * 100.0,
        q.f1() * 100.0
    );
}
