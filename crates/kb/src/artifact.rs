//! Versioned, checksummed binary container for persisted artifacts.
//!
//! MinoanER's blocking/similarity structures are built once and queried
//! many times, so they are worth persisting. This module provides the
//! *container* layer of that persistence: an append-only section file
//! with a fixed header and a checksummed section table. What goes *into*
//! the sections (interners, CSR buffers, blocks, matchings) is encoded
//! by the layers that own those types; this module only guarantees that
//! a file either round-trips byte-for-byte or is rejected with a
//! structured [`ArtifactError`] — never a panic, never a torn read.
//!
//! # Wire layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"MINOANIX"
//! 8       4     format version (u32 LE)
//! 12      4     section count  (u32 LE)
//! 16      28×n  section table: tag u32 · offset u64 · len u64 · fnv1a u64
//! ...           section payloads (concatenated, in table order)
//! ```
//!
//! All integers are little-endian. Section offsets are absolute file
//! offsets; every section's FNV-1a checksum is validated on open, so a
//! flipped bit anywhere in a payload is caught before any decoding runs.
//! Reading is std-only: the file is read into one owned buffer (the
//! sanctioned fallback for mmap) and decoded spans borrow from it.

use std::fmt;
use std::io::{self, Read, Write};
use std::ops::Range;
use std::path::Path;

use minoan_exec::faults;

/// File magic: identifies a MinoanER index artifact.
pub const MAGIC: [u8; 8] = *b"MINOANIX";

/// Current artifact format version. Bump on any layout change; readers
/// reject other versions with [`ArtifactError::UnsupportedVersion`].
/// Version 2 replaced the bare URI-dictionary sections with whole
/// embedded KBs (required for incremental delta resolution) and added
/// a content version to the meta section.
pub const FORMAT_VERSION: u32 = 2;

/// Size of the fixed header preceding the section table.
pub const HEADER_BYTES: usize = 16;

/// Size of one section-table entry.
pub const SECTION_ENTRY_BYTES: usize = 28;

/// Named fault-injection site armed around every artifact read (see
/// [`minoan_exec::faults`]): `MINOAN_FAULTS=store.artifact.read:1:io`
/// makes [`ArtifactFile::open`] fail with an injected IO error.
pub const READ_FAULT_SITE: &str = "store.artifact.read";

/// Why an artifact could not be read.
///
/// Every variant is a clean, recoverable rejection — corrupt or
/// truncated files never panic the reader.
#[derive(Debug)]
pub enum ArtifactError {
    /// The underlying file could not be read or written.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not an artifact.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u32,
    },
    /// The file ends before the advertised structure does.
    Truncated {
        /// Bytes the structure requires.
        needed: u64,
        /// Bytes actually present.
        have: u64,
    },
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch {
        /// Tag of the damaged section.
        tag: u32,
    },
    /// A section the decoder requires is absent.
    MissingSection {
        /// Tag of the absent section.
        tag: u32,
    },
    /// A section payload decoded to something structurally invalid.
    Corrupt(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io error: {e}"),
            ArtifactError::BadMagic => write!(f, "not a MinoanER artifact (bad magic)"),
            ArtifactError::UnsupportedVersion { found } => write!(
                f,
                "unsupported artifact format version {found} (reader supports {FORMAT_VERSION})"
            ),
            ArtifactError::Truncated { needed, have } => {
                write!(f, "artifact truncated: need {needed} bytes, have {have}")
            }
            ArtifactError::ChecksumMismatch { tag } => {
                write!(f, "artifact section 0x{tag:08x} failed its checksum")
            }
            ArtifactError::MissingSection { tag } => {
                write!(f, "artifact is missing section 0x{tag:08x}")
            }
            ArtifactError::Corrupt(what) => write!(f, "artifact corrupt: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// 64-bit FNV-1a over `bytes` — the section checksum function.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Accumulates tagged sections and writes them as one artifact file.
#[derive(Debug, Default)]
pub struct ArtifactWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl ArtifactWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section. Tags must be unique per file; duplicates are a
    /// caller bug and panic.
    pub fn push_section(&mut self, tag: u32, payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|&(t, _)| t != tag),
            "duplicate artifact section tag 0x{tag:08x}"
        );
        self.sections.push((tag, payload));
    }

    /// Serializes header, section table and payloads into one buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        let table_bytes = self.sections.len() * SECTION_ENTRY_BYTES;
        let payload_bytes: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(HEADER_BYTES + table_bytes + payload_bytes);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = (HEADER_BYTES + table_bytes) as u64;
        for (tag, payload) in &self.sections {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Writes the artifact to `path`, returning the file size in bytes.
    /// The write goes through a temp file in the same directory plus an
    /// atomic rename, so readers never observe a half-written artifact.
    pub fn write_to(self, path: &Path) -> io::Result<u64> {
        let _span = minoan_obs::trace::span(minoan_obs::Level::Debug, "artifact.write", || {
            path.display().to_string()
        });
        let bytes = self.into_bytes();
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(bytes.len() as u64)
    }
}

/// An opened artifact: the file's bytes plus its validated section table.
///
/// Opening validates magic, version, table bounds and every section
/// checksum up front; [`ArtifactFile::section`] lookups afterwards are
/// pure slicing.
#[derive(Debug)]
pub struct ArtifactFile {
    buf: Vec<u8>,
    version: u32,
    sections: Vec<(u32, Range<usize>)>,
}

impl ArtifactFile {
    /// Reads and validates the artifact at `path`.
    pub fn open(path: &Path) -> Result<Self, ArtifactError> {
        let _span = minoan_obs::trace::span(minoan_obs::Level::Debug, "artifact.read", || {
            path.display().to_string()
        });
        faults::point(READ_FAULT_SITE)?;
        let mut buf = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut buf)?;
        Self::from_bytes(buf)
    }

    /// Validates an in-memory artifact image.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, ArtifactError> {
        if buf.len() < HEADER_BYTES {
            if buf.len() >= MAGIC.len() && buf[..MAGIC.len()] != MAGIC {
                return Err(ArtifactError::BadMagic);
            }
            return Err(ArtifactError::Truncated {
                needed: HEADER_BYTES as u64,
                have: buf.len() as u64,
            });
        }
        if buf[..8] != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion { found: version });
        }
        let count = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as usize;
        let table_end = HEADER_BYTES as u64 + (count as u64) * SECTION_ENTRY_BYTES as u64;
        if (buf.len() as u64) < table_end {
            return Err(ArtifactError::Truncated {
                needed: table_end,
                have: buf.len() as u64,
            });
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_BYTES + i * SECTION_ENTRY_BYTES;
            let tag = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(buf[at + 4..at + 12].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(buf[at + 12..at + 20].try_into().expect("8 bytes"));
            let checksum = u64::from_le_bytes(buf[at + 20..at + 28].try_into().expect("8 bytes"));
            let end = offset
                .checked_add(len)
                .ok_or(ArtifactError::Corrupt(format!(
                    "section 0x{tag:08x} offset overflows"
                )))?;
            if end > buf.len() as u64 {
                return Err(ArtifactError::Truncated {
                    needed: end,
                    have: buf.len() as u64,
                });
            }
            let range = offset as usize..end as usize;
            if fnv1a(&buf[range.clone()]) != checksum {
                return Err(ArtifactError::ChecksumMismatch { tag });
            }
            sections.push((tag, range));
        }
        Ok(Self {
            buf,
            version,
            sections,
        })
    }

    /// The file's format version (always [`FORMAT_VERSION`] today).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Tags present, in file order.
    pub fn tags(&self) -> impl Iterator<Item = u32> + '_ {
        self.sections.iter().map(|&(t, _)| t)
    }

    /// The payload of section `tag`.
    pub fn section(&self, tag: u32) -> Result<&[u8], ArtifactError> {
        self.sections
            .iter()
            .find(|&&(t, _)| t == tag)
            .map(|(_, r)| &self.buf[r.clone()])
            .ok_or(ArtifactError::MissingSection { tag })
    }

    /// The payload length of section `tag`, if present.
    pub fn section_len(&self, tag: u32) -> Option<u64> {
        self.sections
            .iter()
            .find(|&&(t, _)| t == tag)
            .map(|(_, r)| r.len() as u64)
    }
}

// ---------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------

/// Appends a `u32` (LE).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (LE).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (LE) — bit-exact.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a length-prefixed `u32` slice.
pub fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_u32(out, v);
    }
}

/// A bounds-checked reader over a section payload. Every read returns
/// [`ArtifactError::Corrupt`] instead of panicking when the payload is
/// shorter than its structure claims.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed the whole payload.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Corrupt(format!(
                "payload ends early: wanted {n} more bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single tag byte.
    pub fn get_u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    /// Reads `n` raw bytes (a nested, length-prefixed payload).
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        self.take(n)
    }

    /// Reads a `u32` (LE).
    pub fn get_u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64` (LE).
    pub fn get_u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that
    /// do not fit the platform.
    pub fn get_len(&mut self) -> Result<usize, ArtifactError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| ArtifactError::Corrupt("length exceeds platform usize".into()))
    }

    /// Reads an `f64` bit pattern (LE).
    pub fn get_f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, ArtifactError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Corrupt("string payload is not UTF-8".into()))
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, ArtifactError> {
        let len = self.get_len()?;
        if self.remaining() < len.saturating_mul(4) {
            return Err(ArtifactError::Corrupt(format!(
                "u32 slice claims {len} entries but only {} bytes remain",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bytes() -> Vec<u8> {
        let mut w = ArtifactWriter::new();
        w.push_section(0x10, b"hello".to_vec());
        w.push_section(0x20, vec![1, 2, 3, 4]);
        w.into_bytes()
    }

    #[test]
    fn sections_round_trip() {
        let f = ArtifactFile::from_bytes(sample_bytes()).unwrap();
        assert_eq!(f.version(), FORMAT_VERSION);
        assert_eq!(f.section(0x10).unwrap(), b"hello");
        assert_eq!(f.section(0x20).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(f.section_len(0x10), Some(5));
        assert!(matches!(
            f.section(0x99),
            Err(ArtifactError::MissingSection { tag: 0x99 })
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            ArtifactFile::from_bytes(bytes),
            Err(ArtifactError::BadMagic)
        ));
        // A short file that already disagrees with the magic reports
        // BadMagic, not Truncated.
        assert!(matches!(
            ArtifactFile::from_bytes(b"NOTMINOAN".to_vec()),
            Err(ArtifactError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ArtifactFile::from_bytes(bytes),
            Err(ArtifactError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn truncation_is_rejected_at_every_cut() {
        let bytes = sample_bytes();
        for cut in 0..bytes.len() {
            let err = ArtifactFile::from_bytes(bytes[..cut].to_vec()).unwrap_err();
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated { .. } | ArtifactError::ChecksumMismatch { .. }
                ),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut bytes = sample_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            ArtifactFile::from_bytes(bytes),
            Err(ArtifactError::ChecksumMismatch { tag: 0x20 })
        ));
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 3);
        put_f64(&mut buf, -0.125);
        put_str(&mut buf, "κνωσός");
        put_u32s(&mut buf, &[5, 6, 7]);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.get_u32().unwrap(), 7);
        assert_eq!(c.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(c.get_f64().unwrap(), -0.125);
        assert_eq!(c.get_str().unwrap(), "κνωσός");
        assert_eq!(c.get_u32s().unwrap(), vec![5, 6, 7]);
        assert!(c.is_exhausted());
    }

    #[test]
    fn cursor_overrun_is_a_clean_error() {
        let mut c = Cursor::new(&[1, 2]);
        assert!(matches!(c.get_u64(), Err(ArtifactError::Corrupt(_))));
        // A huge claimed string length must not allocate or panic.
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        let mut c = Cursor::new(&buf);
        assert!(c.get_str().is_err());
        let mut c = Cursor::new(&buf);
        assert!(c.get_u32s().is_err());
    }

    #[test]
    fn write_to_disk_round_trips() {
        let dir = std::env::temp_dir().join("minoan-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t-{}.idx", std::process::id()));
        let mut w = ArtifactWriter::new();
        w.push_section(1, b"payload".to_vec());
        let bytes = w.write_to(&path).unwrap();
        let f = ArtifactFile::open(&path).unwrap();
        assert_eq!(f.file_bytes(), bytes);
        assert_eq!(f.section(1).unwrap(), b"payload");
        std::fs::remove_file(&path).unwrap();
    }
}
