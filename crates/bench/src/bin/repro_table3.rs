//! Regenerates the paper's Table III: precision/recall/F1 of every
//! method on the four benchmark datasets.
//!
//! Usage: `repro_table3 [scale] [seed]` (default scale 1.0).
//! Rows marked `paper` quote the publication; `ours` rows are measured
//! on the synthetic analogues (see DESIGN.md §3).

use minoan_bench::{run_methods, DEFAULT_SEED, PAPER_TABLE3};
use minoan_datagen::DatasetKind;
use minoan_eval::Table;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(1.0);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(DEFAULT_SEED);

    println!("Table III — evaluation of MinoanER compared to existing methods");
    println!("(seed {seed}, scale {scale}; paper rows quoted from ICDE 2018)\n");

    let runs: Vec<_> = DatasetKind::ALL
        .iter()
        .map(|&kind| run_methods(kind, seed, scale))
        .collect();

    let mut table = Table::new(&[
        "method",
        "metric",
        "Restaurant",
        "Rexa-DBLP",
        "BBCmusic-DBpedia",
        "YAGO-IMDb",
    ]);
    for paper_row in &PAPER_TABLE3 {
        for (mi, metric) in ["Prec.", "Recall", "F1"].iter().enumerate() {
            let mut cells: Vec<String> =
                vec![format!("{} (paper)", paper_row.method), metric.to_string()];
            for c in &paper_row.cells {
                cells.push(match c {
                    Some(t) => format!("{:.2}", [t.0, t.1, t.2][mi]),
                    None => "-".to_string(),
                });
            }
            table.row(&cells);
        }
        if paper_row.reimplemented {
            for (mi, metric) in ["Prec.", "Recall", "F1"].iter().enumerate() {
                let mut cells: Vec<String> =
                    vec![format!("{} (ours)", paper_row.method), metric.to_string()];
                for run in &runs {
                    let m = run
                        .methods
                        .iter()
                        .find(|m| m.method == paper_row.method)
                        .expect("method row");
                    let v = [m.quality.precision(), m.quality.recall(), m.quality.f1()][mi];
                    cells.push(format!("{:.2}", v * 100.0));
                }
                table.row(&cells);
            }
        }
        table.separator();
    }
    println!("{}", table.render());

    println!("Details:");
    for run in &runs {
        println!("  {}:", run.dataset.name);
        for m in &run.methods {
            if !m.detail.is_empty() {
                println!("    {}: {}", m.method, m.detail);
            }
        }
    }

    // The paper's headline claims, checked on the measured rows.
    let f1 = |run: &minoan_bench::DatasetRun, method: &str| {
        run.methods
            .iter()
            .find(|m| m.method == method)
            .map(|m| m.quality.f1())
            .unwrap_or(0.0)
    };
    println!("\nShape checks (paper's qualitative claims):");
    let checks: Vec<(String, bool)> = vec![
        (
            "Restaurant: MinoanER reaches F1 = 1.0".into(),
            f1(&runs[0], "MinoanER") > 0.99,
        ),
        (
            "Restaurant: BSL also reaches F1 = 1.0".into(),
            f1(&runs[0], "BSL") > 0.99,
        ),
        (
            "Rexa-DBLP: MinoanER beats BSL".into(),
            f1(&runs[1], "MinoanER") > f1(&runs[1], "BSL"),
        ),
        (
            "BBCmusic-DBpedia: MinoanER clearly above BSL".into(),
            f1(&runs[2], "MinoanER") > f1(&runs[2], "BSL") + 0.05,
        ),
        (
            "BBCmusic-DBpedia: PARIS collapses below both".into(),
            f1(&runs[2], "PARIS") < f1(&runs[2], "MinoanER")
                && f1(&runs[2], "PARIS") < f1(&runs[2], "BSL"),
        ),
        (
            "YAGO-IMDb: BSL collapses (value-only evidence)".into(),
            f1(&runs[3], "BSL") < 0.55,
        ),
        (
            "YAGO-IMDb: MinoanER close to SiGMa/PARIS, far above BSL".into(),
            f1(&runs[3], "MinoanER") > 0.8 && f1(&runs[3], "MinoanER") > f1(&runs[3], "BSL") + 0.25,
        ),
    ];
    let mut ok = true;
    for (name, pass) in &checks {
        println!("  [{}] {}", if *pass { "PASS" } else { "FAIL" }, name);
        ok &= *pass;
    }
    std::process::exit(if ok { 0 } else { 1 });
}
