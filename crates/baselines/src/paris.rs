//! PARIS-like baseline: probabilistic alignment driven by functional
//! evidence (after Suchanek, Abiteboul, Senellart — PVLDB 2011).
//!
//! PARIS derives match probabilities from *exact* shared values, weighted
//! by how close to functional (unique-valued) the evidence is, and
//! iteratively propagates probabilities along relations whose
//! functionality it estimates from the data. The defining behaviour the
//! paper contrasts against MinoanER: PARIS needs exact value overlap, so
//! it collapses on structurally/lexically heterogeneous KBs (its
//! BBCmusic–DBpedia row) while doing very well when names are copied
//! verbatim (Restaurant, YAGO–IMDb).
//!
//! This is a faithful-in-spirit simplification, not a re-implementation:
//! schema alignment is implicit (evidence is aggregated over all
//! attribute pairs), and probabilities combine noisy-or style.

use minoan_kb::{EntityId, FxHashMap, KbPair, KbSide, Matching};

use crate::umc::unique_mapping_clustering;

/// PARIS-like configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParisConfig {
    /// Fixpoint iterations of relational propagation.
    pub iterations: usize,
    /// Final acceptance threshold on the match probability.
    pub threshold: f64,
    /// Ignore literal values shared by more than this many entity pairs
    /// (non-functional evidence carries almost no information anyway).
    pub max_value_pairs: usize,
}

impl Default for ParisConfig {
    fn default() -> Self {
        Self {
            iterations: 3,
            threshold: 0.45,
            max_value_pairs: 1000,
        }
    }
}

fn normalize(v: &str) -> String {
    v.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

/// Per-relation functionality in one direction: `distinct sources /
/// edges` — 1 for a strictly functional relation, small for hub-like
/// ones. `inverse` measures the object-to-subject direction.
fn functionality(
    kb: &minoan_kb::KnowledgeBase,
    inverse: bool,
) -> FxHashMap<minoan_kb::AttrId, f64> {
    let mut sources: FxHashMap<minoan_kb::AttrId, minoan_kb::FxHashSet<EntityId>> =
        FxHashMap::default();
    let mut edges: FxHashMap<minoan_kb::AttrId, usize> = FxHashMap::default();
    for e in kb.entities() {
        for s in kb.statements(e) {
            if let Some(o) = s.value.as_entity() {
                let src = if inverse { o } else { e };
                sources.entry(s.attr).or_default().insert(src);
                *edges.entry(s.attr).or_insert(0) += 1;
            }
        }
    }
    sources
        .into_iter()
        .map(|(a, src)| (a, src.len() as f64 / edges[&a].max(1) as f64))
        .collect()
}

/// Runs the PARIS-like matcher on `pair`.
pub fn run_paris(pair: &KbPair, config: ParisConfig) -> Matching {
    // 1. Literal evidence: exact shared values, inverse-occurrence weighted.
    let mut values1: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
    let mut values2: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
    for (side, map) in [
        (KbSide::First, &mut values1),
        (KbSide::Second, &mut values2),
    ] {
        let kb = pair.kb(side);
        for e in kb.entities() {
            for lit in kb.literals(e) {
                let key = normalize(lit);
                if !key.is_empty() {
                    map.entry(key).or_default().push(e);
                }
            }
        }
    }
    let mut literal: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    for (value, owners1) in &values1 {
        let Some(owners2) = values2.get(value) else {
            continue;
        };
        let pairs = owners1.len() * owners2.len();
        if pairs == 0 || pairs > config.max_value_pairs {
            continue;
        }
        // Evidence strength: the probability that a shared value implies
        // a match decays with how many pairs share it.
        let w = 1.0 / pairs as f64;
        for &e1 in owners1 {
            for &e2 in owners2 {
                let p = literal.entry((e1.0, e2.0)).or_insert(0.0);
                *p = 1.0 - (1.0 - *p) * (1.0 - w);
            }
        }
    }
    let mut prob = literal.clone();

    // 2. Relational propagation to a fixpoint (bounded iterations),
    //    over both edge directions with direction-appropriate
    //    functionality (objects propagate through inversely functional
    //    relations, as in the original PARIS).
    let fun_out = [
        functionality(&pair.first, false),
        functionality(&pair.second, false),
    ];
    let fun_in = [
        functionality(&pair.first, true),
        functionality(&pair.second, true),
    ];
    let directed_edges =
        |kb: &minoan_kb::KnowledgeBase, side: usize, e: EntityId| -> Vec<(f64, EntityId, usize)> {
            let mut v: Vec<(f64, EntityId, usize)> = kb
                .out_edges(e)
                .map(|ed| {
                    (
                        fun_out[side].get(&ed.relation).copied().unwrap_or(0.0),
                        ed.neighbor,
                        ed.relation.index(),
                    )
                })
                .collect();
            v.extend(kb.in_edges(e).iter().map(|ed| {
                (
                    fun_in[side].get(&ed.relation).copied().unwrap_or(0.0),
                    ed.neighbor,
                    // Offset inverse relations so they do not align with the
                    // forward direction.
                    ed.relation.index() + 1_000_000,
                )
            }));
            v
        };
    for _ in 0..config.iterations {
        let snapshot = std::mem::take(&mut prob);
        // Each iteration recomputes P from the immutable literal base
        // plus relational evidence under the previous estimates — a true
        // fixpoint recomputation, not an accumulating noisy-or (which
        // would inflate every weak signal to certainty over iterations).
        prob = literal.clone();
        for e1 in pair.first.entities() {
            let edges1 = directed_edges(&pair.first, 0, e1);
            if edges1.is_empty() {
                continue;
            }
            for e2 in pair.second.entities() {
                let edges2 = directed_edges(&pair.second, 1, e2);
                if edges2.is_empty() {
                    continue;
                }
                let mut no_evidence = 1.0;
                let mut any = false;
                for &(f1, n1, _) in &edges1 {
                    for &(f2, n2, _) in &edges2 {
                        let p_n = snapshot.get(&(n1.0, n2.0)).copied().unwrap_or(0.0);
                        if p_n <= 0.0 {
                            continue;
                        }
                        let ev = f1 * f2 * p_n;
                        if ev > 0.0 {
                            any = true;
                            no_evidence *= 1.0 - ev;
                        }
                    }
                }
                if any {
                    let rel_p = 1.0 - no_evidence;
                    let p = prob.entry((e1.0, e2.0)).or_insert(0.0);
                    // Damped: relational evidence alone should not
                    // outweigh a strong literal match.
                    *p = 1.0 - (1.0 - *p) * (1.0 - 0.55 * rel_p);
                }
            }
        }
    }

    // 3. Unique mapping over the probabilities.
    let scored: Vec<(EntityId, EntityId, f64)> = prob
        .into_iter()
        .map(|((a, b), p)| (EntityId(a), EntityId(b), p))
        .collect();
    unique_mapping_clustering(&scored, config.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_kb::KbBuilder;

    #[test]
    fn exact_shared_names_match() {
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:0", "name", "Kri Kri Taverna");
        a.add_literal("a:1", "name", "Labyrinth Grill");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:0", "title", "kri kri  taverna");
        b.add_literal("b:1", "title", "labyrinth grill");
        let pair = KbPair::new(a.finish(), b.finish());
        let m = run_paris(&pair, ParisConfig::default());
        assert!(m.contains(EntityId(0), EntityId(0)));
        assert!(m.contains(EntityId(1), EntityId(1)));
    }

    #[test]
    fn paraphrased_values_defeat_paris() {
        // Same meaning, no exact string equality: PARIS sees nothing.
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:0", "bio", "famous cretan musician born in heraklion");
        let mut b = KbBuilder::new("E2");
        b.add_literal(
            "b:0",
            "abstract",
            "a musician from heraklion crete famous for the lyra",
        );
        let pair = KbPair::new(a.finish(), b.finish());
        let m = run_paris(&pair, ParisConfig::default());
        assert!(m.is_empty());
    }

    #[test]
    fn frequent_values_carry_little_evidence() {
        let mut a = KbBuilder::new("E1");
        let mut b = KbBuilder::new("E2");
        for i in 0..10 {
            a.add_literal(&format!("a:{i}"), "genre", "rock");
            b.add_literal(&format!("b:{i}"), "style", "rock");
        }
        let pair = KbPair::new(a.finish(), b.finish());
        let m = run_paris(&pair, ParisConfig::default());
        // 100 candidate pairs share "rock": w = 0.01 each, below threshold.
        assert!(m.is_empty());
    }

    #[test]
    fn functional_relations_propagate_matches() {
        // Movies have no shared literal, but their (uniquely named)
        // directors do, and directedBy is functional.
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:m", "title", "side one catalog title");
        a.add_uri("a:m", "directedBy", "a:d");
        a.add_literal("a:d", "name", "jules dassin");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:m", "title", "side two different title");
        b.add_uri("b:m", "directedBy", "b:d");
        b.add_literal("b:d", "name", "jules dassin");
        let pair = KbPair::new(a.finish(), b.finish());
        let m = run_paris(
            &pair,
            ParisConfig {
                threshold: 0.3,
                ..Default::default()
            },
        );
        let am = pair.first.entity_by_uri("a:m").unwrap();
        let bm = pair.second.entity_by_uri("b:m").unwrap();
        assert!(m.contains(am, bm), "got {:?}", m.iter().collect::<Vec<_>>());
    }

    #[test]
    fn functionality_is_one_for_functional_relations() {
        let mut a = KbBuilder::new("E1");
        for i in 0..8 {
            a.declare_entity(&format!("a:{i}"));
        }
        a.add_uri("a:0", "spouse", "a:1");
        a.add_uri("a:2", "spouse", "a:3");
        a.add_uri("a:4", "actedIn", "a:5");
        a.add_uri("a:4", "actedIn", "a:6");
        a.add_uri("a:4", "actedIn", "a:7");
        let kb = a.finish();
        let f = functionality(&kb, false);
        let spouse = kb.attr_by_name("spouse").unwrap();
        let acted = kb.attr_by_name("actedIn").unwrap();
        assert!((f[&spouse] - 1.0).abs() < 1e-12);
        assert!((f[&acted] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn output_is_a_partial_matching() {
        let mut a = KbBuilder::new("E1");
        let mut b = KbBuilder::new("E2");
        for i in 0..5 {
            a.add_literal(&format!("a:{i}"), "name", &format!("shared name {}", i % 2));
            b.add_literal(&format!("b:{i}"), "name", &format!("shared name {}", i % 2));
        }
        let pair = KbPair::new(a.finish(), b.finish());
        let m = run_paris(&pair, ParisConfig::default());
        assert!(m.is_partial_matching());
    }
}
