//! Dataset/method execution shared by the repro binaries and benches.

use minoan_baselines::{run_bsl, run_paris, run_sigma, ParisConfig, SigmaConfig};
use minoan_blocking::unique_name_pairs;
use minoan_core::{build_blocks, MinoanConfig, MinoanEr, PipelineReport};
use minoan_datagen::{Dataset, DatasetKind};
use minoan_eval::MatchQuality;
use minoan_text::{TokenizedPair, Tokenizer};

/// Seed used by all repro binaries so every table is generated from the
/// same KBs.
pub const DEFAULT_SEED: u64 = 20180416; // ICDE 2018 started April 16.

/// Default generation scale per dataset: tuned so the full Table III
/// regeneration (including BSL's 480-configuration sweep) finishes in
/// minutes on a laptop.
pub fn default_scale(kind: DatasetKind) -> f64 {
    match kind {
        DatasetKind::Restaurant => 1.0,
        DatasetKind::RexaDblp => 1.0,
        DatasetKind::BbcDbpedia => 1.0,
        DatasetKind::YagoImdb => 1.0,
    }
}

/// One method's measured quality.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name (matching the paper's Table III rows).
    pub method: &'static str,
    /// Measured quality.
    pub quality: MatchQuality,
    /// Extra information (winning BSL config, pipeline counters…).
    pub detail: String,
}

/// The outcome of running every re-implemented method on one dataset.
pub struct DatasetRun {
    /// The generated dataset.
    pub dataset: Dataset,
    /// Per-method results, in Table III row order.
    pub methods: Vec<MethodResult>,
    /// MinoanER's pipeline report.
    pub minoan_report: PipelineReport,
}

/// Runs SiGMa-like, PARIS-like, BSL and MinoanER on `kind`.
pub fn run_methods(kind: DatasetKind, seed: u64, scale: f64) -> DatasetRun {
    let dataset = kind.generate_scaled(seed, scale);
    let pair = &dataset.pair;
    let truth = &dataset.truth;
    let config = MinoanConfig::default();
    let artifacts = build_blocks(pair, &config);
    let mut methods = Vec::new();

    // SiGMa-like: seeds are the unique-name pairs, candidates from BT.
    let tokens = TokenizedPair::build(pair, &Tokenizer::default());
    let seeds = unique_name_pairs(&artifacts.name_blocks);
    let sigma = run_sigma(
        pair,
        &tokens,
        &artifacts.token_blocks,
        &seeds,
        SigmaConfig::default(),
    );
    methods.push(MethodResult {
        method: "SiGMa",
        quality: MatchQuality::evaluate(&sigma, truth),
        detail: format!("{} seeds", seeds.len()),
    });

    // PARIS-like.
    let paris = run_paris(pair, ParisConfig::default());
    methods.push(MethodResult {
        method: "PARIS",
        quality: MatchQuality::evaluate(&paris, truth),
        detail: String::new(),
    });

    // BSL over the same BN ∪ BT input as MinoanER.
    let bsl = run_bsl(
        &pair.first,
        &pair.second,
        &[&artifacts.name_blocks, &artifacts.token_blocks],
        truth,
    );
    methods.push(MethodResult {
        method: "BSL",
        quality: bsl.quality,
        detail: format!("best config {}", bsl.config),
    });

    // MinoanER.
    let out = MinoanEr::with_defaults().run(pair);
    methods.push(MethodResult {
        method: "MinoanER",
        quality: MatchQuality::evaluate(&out.matching, truth),
        detail: format!(
            "H1={} H2={} H3={} H4-removed={}",
            out.report.h1_matches,
            out.report.h2_matches,
            out.report.h3_matches,
            out.report.h4_removed
        ),
    });

    DatasetRun {
        dataset,
        methods,
        minoan_report: out.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_produces_all_method_rows() {
        let run = run_methods(DatasetKind::Restaurant, 7, 0.1);
        let names: Vec<_> = run.methods.iter().map(|m| m.method).collect();
        assert_eq!(names, vec!["SiGMa", "PARIS", "BSL", "MinoanER"]);
        for m in &run.methods {
            assert!(m.quality.f1() >= 0.0 && m.quality.f1() <= 1.0);
        }
    }
}
