//! Canonical worlds.
//!
//! A *world* is the ground truth the generator renders into two KBs:
//! canonical entities with per-side name/value token lists (corruption is
//! decided here, once, so both renderings stay consistent) plus a link
//! structure shared by both sides.

use rand::rngs::StdRng;
use rand::Rng;

use crate::words::WordPool;

/// The token pools a world draws from.
///
/// Side noise comes from *side-private* pools: verbose KB-specific text
/// (catalog ids, abstract boilerplate) must not accidentally collide
/// across KBs — in real Zipfian text, tokens shared between two KBs are
/// either genuinely co-referential or frequent, and an accidental
/// mutually-unique shared token (a fake `valueSim ≥ 1` beacon) is rare.
#[derive(Debug, Clone)]
pub struct TokenPools {
    /// Distinctive content vocabulary (shared namespace).
    pub rare: WordPool,
    /// Frequent vocabulary (genres, venues, boilerplate).
    pub common: WordPool,
    /// Per-side noise vocabulary (never shared across sides).
    pub noise: [WordPool; 2],
}

impl TokenPools {
    /// Generates the four pools from one RNG.
    pub fn generate(rng: &mut StdRng, rare_n: usize, common_n: usize, noise_n: usize) -> Self {
        Self {
            rare: WordPool::generate(rng, rare_n),
            common: WordPool::generate(rng, common_n),
            noise: [
                WordPool::generate(rng, noise_n),
                WordPool::generate(rng, noise_n),
            ],
        }
    }
}

/// On which sides a canonical entity is described.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Presence {
    /// Described in both KBs (a ground-truth match if its class is in
    /// the ground truth).
    Both,
    /// Described only in the first KB.
    FirstOnly,
    /// Described only in the second KB.
    SecondOnly,
}

impl Presence {
    /// Whether the entity appears on side `i` (0 or 1).
    pub fn on(self, i: usize) -> bool {
        match self {
            Presence::Both => true,
            Presence::FirstOnly => i == 0,
            Presence::SecondOnly => i == 1,
        }
    }
}

/// A canonical entity with pre-rendered per-side token lists.
#[derive(Debug, Clone)]
pub struct CanonicalEntity {
    /// Entity class index (dataset-defined, e.g. 0 = restaurant,
    /// 1 = address).
    pub class: usize,
    /// Which sides describe the entity.
    pub presence: Presence,
    /// Name tokens per side.
    pub names: [Vec<String>; 2],
    /// Per side, per field: value tokens.
    pub fields: [Vec<Vec<String>>; 2],
    /// Links `(relation index, target canonical entity index)`, shared
    /// by both sides (rendered only when the target is present).
    pub links: Vec<(usize, usize)>,
    /// Links that exist on only one side — structural heterogeneity
    /// like DBpedia asserting both city and country as `birthPlace`.
    pub side_links: [Vec<(usize, usize)>; 2],
}

/// How one entity class generates names and values.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Name length in words, inclusive range.
    pub name_words: (usize, usize),
    /// Probability that both sides carry the *identical* name (H1 food).
    pub name_exact_prob: f64,
    /// When not exact: probability of dropping each name token on the
    /// second side (the rest are re-ordered).
    pub name_drop_prob: f64,
    /// Value fields.
    pub fields: Vec<FieldSpec>,
}

/// How one value field generates tokens.
#[derive(Debug, Clone)]
pub struct FieldSpec {
    /// Canonical token count, inclusive range.
    pub words: (usize, usize),
    /// Fraction of canonical tokens drawn from the *common* pool (high
    /// entity frequency, low `valueSim` weight) instead of the rare pool.
    pub common_ratio: f64,
    /// Per-side probability of keeping each canonical token.
    pub keep: [f64; 2],
    /// Per-side count range of extra side-private noise tokens.
    pub extra: [(usize, usize); 2],
    /// Probability that an entity is *lexically hard* on this field:
    /// `hard_keep` replaces `keep`. Models datasets where only part of
    /// the matches carry shared lexical evidence (the paper's
    /// BBCmusic-DBpedia and YAGO-IMDb regimes).
    pub hard_prob: f64,
    /// The keep probabilities used for hard entities.
    pub hard_keep: [f64; 2],
    /// Per-side probability that an entity carries this field at all.
    /// Partial support keeps free-text fields *below* the name attribute
    /// in the harmonic support/discriminability ranking, as in real KBs.
    pub support: [f64; 2],
    /// Fraction of canonical tokens shared across the members of a
    /// collision cluster (1.0 = homonym entities are indistinguishable
    /// by this field, 0.0 = each member gets fresh content, like
    /// same-titled papers with different abstracts).
    pub cluster_share: f64,
    /// Fraction of *extra* (side-noise) tokens drawn from the common
    /// pool; the rest come from the side-private pool. Low values model
    /// verbose but topic-specific text that does not collide with other
    /// entities.
    pub noise_common_ratio: f64,
}

impl FieldSpec {
    /// A field with uniform (non-bimodal) lexical difficulty.
    pub fn new(
        words: (usize, usize),
        common_ratio: f64,
        keep: [f64; 2],
        extra: [(usize, usize); 2],
    ) -> Self {
        Self {
            words,
            common_ratio,
            keep,
            extra,
            hard_prob: 0.0,
            hard_keep: [0.0, 0.0],
            support: [1.0, 1.0],
            cluster_share: 1.0,
            noise_common_ratio: 0.7,
        }
    }

    /// Makes a fraction `prob` of entities lexically hard, with
    /// `hard_keep` keep-probabilities.
    pub fn with_hard(mut self, prob: f64, hard_keep: [f64; 2]) -> Self {
        self.hard_prob = prob;
        self.hard_keep = hard_keep;
        self
    }

    /// Sets the per-side probability that an entity carries this field.
    pub fn with_support(mut self, support: [f64; 2]) -> Self {
        self.support = support;
        self
    }

    /// Sets the fraction of canonical tokens shared across collision
    /// cluster members.
    pub fn with_cluster_share(mut self, share: f64) -> Self {
        self.cluster_share = share;
        self
    }

    /// Sets the fraction of side-noise tokens drawn from the common pool.
    pub fn with_noise_common_ratio(mut self, ratio: f64) -> Self {
        self.noise_common_ratio = ratio;
        self
    }
}

/// The canonical world: entities plus which classes count as ground truth.
#[derive(Debug, Clone, Default)]
pub struct World {
    /// The canonical entities.
    pub entities: Vec<CanonicalEntity>,
    /// Classes whose `Both` entities form the ground truth.
    pub gt_classes: Vec<usize>,
}

impl World {
    /// Adds an entity of `class`/`presence` generated from `spec`, with
    /// name tokens drawn from the rare pool. See
    /// [`World::add_entity_with_name_pool`] for a dedicated name pool.
    pub fn add_entity(
        &mut self,
        rng: &mut StdRng,
        class: usize,
        presence: Presence,
        spec: &ClassSpec,
        pools: &TokenPools,
    ) -> usize {
        let name_pool = pools.rare.clone();
        self.add_entity_with_name_pool(rng, class, presence, spec, &name_pool, pools)
    }

    /// Adds an entity whose name tokens come from `name_pool`.
    ///
    /// A *medium-sized* name pool makes full name strings (nearly)
    /// unique while the individual name tokens stay frequent — names
    /// then feed H1 without giving value-only baselines token-level
    /// evidence, the YAGO-IMDb signature.
    #[allow(clippy::too_many_arguments)]
    pub fn add_entity_with_name_pool(
        &mut self,
        rng: &mut StdRng,
        class: usize,
        presence: Presence,
        spec: &ClassSpec,
        name_pool: &WordPool,
        pools: &TokenPools,
    ) -> usize {
        let n_name = rng.gen_range(spec.name_words.0..=spec.name_words.1);
        let canonical_name: Vec<String> = (0..n_name)
            .map(|_| name_pool.pick(rng).to_string())
            .collect();
        self.add_entity_named(rng, class, presence, spec, canonical_name, pools)
    }

    /// Adds an entity with an *explicit* canonical name (a cluster of
    /// one — see [`World::add_cluster`]).
    #[allow(clippy::too_many_arguments)]
    pub fn add_entity_named(
        &mut self,
        rng: &mut StdRng,
        class: usize,
        presence: Presence,
        spec: &ClassSpec,
        canonical_name: Vec<String>,
        pools: &TokenPools,
    ) -> usize {
        self.add_cluster(rng, class, &[presence], spec, canonical_name, pools)[0]
    }

    /// Adds a *collision cluster*: several distinct entities sharing the
    /// exact same canonical name **and** the same canonical field
    /// content (homonym persons, remade films, republished papers).
    ///
    /// Inside a cluster, the cross-side token overlap of a wrong pairing
    /// has the same distribution as that of the right pairing, so no
    /// value-only evidence can tell them apart — only relational
    /// evidence (different casts, birthplaces, co-authors) does. This is
    /// the Web-data ambiguity that separates MinoanER from BSL in the
    /// paper's Table III. Per-entity randomness (name exactness, kept
    /// tokens, side noise) is still sampled independently.
    #[allow(clippy::too_many_arguments)]
    pub fn add_cluster(
        &mut self,
        rng: &mut StdRng,
        class: usize,
        presences: &[Presence],
        spec: &ClassSpec,
        canonical_name: Vec<String>,
        pools: &TokenPools,
    ) -> Vec<usize> {
        let (rare, common) = (&pools.rare, &pools.common);
        // Canonical field content and hardness: once per cluster.
        let canon_fields: Vec<(Vec<String>, [f64; 2])> = spec
            .fields
            .iter()
            .map(|fspec| {
                let n = rng.gen_range(fspec.words.0..=fspec.words.1);
                let toks: Vec<String> = (0..n)
                    .map(|_| {
                        if rng.gen_bool(fspec.common_ratio) {
                            common.pick(rng).to_string()
                        } else {
                            rare.pick(rng).to_string()
                        }
                    })
                    .collect();
                let keep = if fspec.hard_prob > 0.0 && rng.gen_bool(fspec.hard_prob) {
                    fspec.hard_keep
                } else {
                    fspec.keep
                };
                (toks, keep)
            })
            .collect();
        presences
            .iter()
            .map(|&presence| {
                let names = self.render_names(rng, spec, &canonical_name);
                let mut fields: [Vec<Vec<String>>; 2] = [Vec::new(), Vec::new()];
                for ((canonical, keep), fspec) in canon_fields.iter().zip(&spec.fields) {
                    // Member-private remix: tokens not shared across the
                    // cluster are resampled per member (consistently
                    // across this member's two sides).
                    let member_canonical: Vec<String> = canonical
                        .iter()
                        .map(|t| {
                            if fspec.cluster_share >= 1.0 || rng.gen_bool(fspec.cluster_share) {
                                t.clone()
                            } else if rng.gen_bool(fspec.common_ratio) {
                                common.pick(rng).to_string()
                            } else {
                                rare.pick(rng).to_string()
                            }
                        })
                        .collect();
                    let canonical = &member_canonical;
                    for side in 0..2 {
                        let mut toks: Vec<String> = Vec::new();
                        if rng.gen_bool(fspec.support[side]) {
                            toks.extend(
                                canonical
                                    .iter()
                                    .filter(|_| rng.gen_bool(keep[side]))
                                    .cloned(),
                            );
                            let extra = rng.gen_range(fspec.extra[side].0..=fspec.extra[side].1);
                            for _ in 0..extra {
                                // Side noise: frequent shared vocabulary
                                // or side-private words — never fake
                                // cross-side rare evidence.
                                toks.push(if rng.gen_bool(fspec.noise_common_ratio) {
                                    common.pick(rng).to_string()
                                } else {
                                    pools.noise[side].pick(rng).to_string()
                                });
                            }
                        }
                        fields[side].push(toks);
                    }
                }
                self.entities.push(CanonicalEntity {
                    class,
                    presence,
                    names,
                    fields,
                    links: Vec::new(),
                    side_links: [Vec::new(), Vec::new()],
                });
                self.entities.len() - 1
            })
            .collect()
    }

    /// Renders the per-side name variants of one entity.
    fn render_names(
        &self,
        rng: &mut StdRng,
        spec: &ClassSpec,
        canonical_name: &[String],
    ) -> [Vec<String>; 2] {
        if rng.gen_bool(spec.name_exact_prob) {
            return [canonical_name.to_vec(), canonical_name.to_vec()];
        }
        let mut second: Vec<String> = canonical_name
            .iter()
            .filter(|_| !rng.gen_bool(spec.name_drop_prob))
            .cloned()
            .collect();
        if second.is_empty() && !canonical_name.is_empty() {
            second.push(canonical_name[rng.gen_range(0..canonical_name.len())].clone());
        }
        if second.is_empty() {
            // Degenerate explicit empty name: both sides nameless.
            [Vec::new(), Vec::new()]
        } else {
            // Re-order so even token-identical variants differ as names.
            let rot = 1.min(second.len() - 1);
            second.rotate_left(rot);
            [canonical_name.to_vec(), second]
        }
    }

    /// Links entity `from` to entity `to` via relation `rel` (on both
    /// sides, wherever both endpoints are present).
    pub fn link(&mut self, from: usize, rel: usize, to: usize) {
        self.entities[from].links.push((rel, to));
    }

    /// Adds a link that exists only in the rendering of side `side`.
    pub fn link_on_side(&mut self, from: usize, rel: usize, to: usize, side: usize) {
        self.entities[from].side_links[side].push((rel, to));
    }

    /// Indices of `Both` entities of ground-truth classes, i.e. the
    /// canonical matches.
    pub fn matches(&self) -> Vec<usize> {
        self.entities
            .iter()
            .enumerate()
            .filter(|(_, e)| e.presence == Presence::Both && self.gt_classes.contains(&e.class))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of entities present on side `i`.
    pub fn present_on(&self, i: usize) -> usize {
        self.entities.iter().filter(|e| e.presence.on(i)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec() -> ClassSpec {
        ClassSpec {
            name_words: (2, 3),
            name_exact_prob: 1.0,
            name_drop_prob: 0.3,
            fields: vec![FieldSpec::new((4, 6), 0.5, [1.0, 0.8], [(0, 0), (1, 2)])],
        }
    }

    fn pools() -> TokenPools {
        let mut rng = StdRng::seed_from_u64(1);
        TokenPools::generate(&mut rng, 500, 30, 200)
    }

    #[test]
    fn exact_names_render_identically() {
        let pools = pools();
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = World::default();
        let i = w.add_entity(&mut rng, 0, Presence::Both, &spec(), &pools);
        let e = &w.entities[i];
        assert_eq!(e.names[0], e.names[1]);
        assert!((2..=3).contains(&e.names[0].len()));
    }

    #[test]
    fn inexact_names_differ() {
        let pools = pools();
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = spec();
        s.name_exact_prob = 0.0;
        s.name_drop_prob = 0.5;
        let mut w = World::default();
        let mut differing = 0;
        for _ in 0..50 {
            let i = w.add_entity(&mut rng, 0, Presence::Both, &s, &pools);
            let e = &w.entities[i];
            assert!(!e.names[1].is_empty());
            if e.names[0] != e.names[1] {
                differing += 1;
            }
        }
        assert!(differing > 40, "only {differing}/50 names differ");
    }

    #[test]
    fn field_sides_follow_keep_and_extra() {
        let pools = pools();
        let mut rng = StdRng::seed_from_u64(4);
        let mut w = World::default();
        let i = w.add_entity(&mut rng, 0, Presence::Both, &spec(), &pools);
        let e = &w.entities[i];
        // Side 0: keep 1.0, no extras -> exactly the canonical tokens.
        assert!((4..=6).contains(&e.fields[0][0].len()));
        // Side 1 has 1-2 extra tokens and may drop canonicals.
        assert!(!e.fields[1][0].is_empty());
    }

    #[test]
    fn matches_and_presence_counts() {
        let pools = pools();
        let mut rng = StdRng::seed_from_u64(5);
        let mut w = World {
            gt_classes: vec![0],
            ..World::default()
        };
        w.add_entity(&mut rng, 0, Presence::Both, &spec(), &pools);
        w.add_entity(&mut rng, 0, Presence::FirstOnly, &spec(), &pools);
        w.add_entity(&mut rng, 1, Presence::Both, &spec(), &pools);
        w.add_entity(&mut rng, 0, Presence::SecondOnly, &spec(), &pools);
        assert_eq!(w.matches(), vec![0]);
        assert_eq!(w.present_on(0), 3);
        assert_eq!(w.present_on(1), 3);
    }

    #[test]
    fn links_are_recorded() {
        let pools = pools();
        let mut rng = StdRng::seed_from_u64(6);
        let mut w = World::default();
        let a = w.add_entity(&mut rng, 0, Presence::Both, &spec(), &pools);
        let b = w.add_entity(&mut rng, 1, Presence::Both, &spec(), &pools);
        w.link(a, 0, b);
        assert_eq!(w.entities[a].links, vec![(0, b)]);
    }
}
