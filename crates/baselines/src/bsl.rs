//! BSL — the paper's schema-agnostic, value-only baseline.
//!
//! BSL receives exactly the same input as MinoanER (the blocks `BN` and
//! `BT`), compares every co-occurring pair, and clusters with Unique
//! Mapping Clustering — but it uses *only value similarity*, no names, no
//! neighbors. To make it as strong as possible it is oracle-tuned: it
//! sweeps
//!
//! - token n-grams, `n ∈ {1, 2, 3}`,
//! - TF and TF-IDF weighting,
//! - Cosine, Jaccard, Generalized Jaccard and SiGMa similarity,
//! - thresholds `t ∈ [0, 1)` step `0.05`,
//!
//! and reports the configuration with the best F1 against the ground
//! truth (the paper's "420 configurations" sweep).

use minoan_blocking::BlockCollection;
use minoan_eval::MatchQuality;
use minoan_kb::{EntityId, GroundTruth, KnowledgeBase, Matching};
use minoan_sim::{build_vectors, Measure, Weighting};
use minoan_text::{token_ngrams_into, Tokenizer};

use crate::umc::umc_trace;

/// One point of the BSL configuration space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BslConfig {
    /// Token n-gram size (1, 2 or 3).
    pub ngram: usize,
    /// TF or TF-IDF.
    pub weighting: Weighting,
    /// The similarity measure.
    pub measure: Measure,
    /// The UMC similarity threshold.
    pub threshold: f64,
}

impl std::fmt::Display for BslConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}-gram/{}/{}/t={:.2}",
            self.ngram, self.weighting, self.measure, self.threshold
        )
    }
}

/// The best configuration found by the sweep, with its matching.
#[derive(Debug, Clone)]
pub struct BslResult {
    /// The winning configuration.
    pub config: BslConfig,
    /// Its quality against the ground truth.
    pub quality: MatchQuality,
    /// Its matching.
    pub matching: Matching,
    /// How many configurations were evaluated.
    pub configs_evaluated: usize,
}

/// Threshold grid `0.00, 0.05, …, 0.95`.
pub fn threshold_grid() -> Vec<f64> {
    (0..20).map(|i| i as f64 * 0.05).collect()
}

/// One evaluated configuration: parameters, quality and the scored UMC
/// trace it was derived from.
type Evaluated = (BslConfig, MatchQuality, Vec<(EntityId, EntityId, f64)>);

/// The n-gram documents (per entity) of one KB.
fn ngram_docs(kb: &KnowledgeBase, n: usize, tokenizer: &Tokenizer) -> Vec<Vec<String>> {
    let mut docs = Vec::with_capacity(kb.entity_count());
    let mut toks = Vec::new();
    for e in kb.entities() {
        let mut doc = Vec::new();
        for lit in kb.literals(e) {
            toks.clear();
            tokenizer.tokenize_into(lit, &mut toks);
            token_ngrams_into(&toks, n, &mut doc);
        }
        docs.push(doc);
    }
    docs
}

/// Runs the full BSL sweep over the candidate pairs of `BN ∪ BT`.
///
/// The 24 vector-space configurations are evaluated in parallel (scoped
/// threads); each one reuses a single UMC trace for all 20 thresholds.
pub fn run_bsl(
    first: &KnowledgeBase,
    second: &KnowledgeBase,
    blocks: &[&BlockCollection],
    truth: &GroundTruth,
) -> BslResult {
    let tokenizer = Tokenizer::default();
    // Distinct candidate pairs across the union of the collections.
    let mut pairs: Vec<(EntityId, EntityId)> = Vec::new();
    {
        let mut seen = minoan_kb::FxHashSet::default();
        for c in blocks {
            for (a, b) in c.distinct_pairs() {
                if seen.insert((a, b)) {
                    pairs.push((a, b));
                }
            }
        }
    }
    pairs.sort_unstable();
    let thresholds = threshold_grid();
    let mut best: Option<Evaluated> = None;
    let mut evaluated = 0usize;
    // One vector space per (n, weighting); four measures share it.
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for n in 1..=3usize {
            let docs1 = ngram_docs(first, n, &tokenizer);
            let docs2 = ngram_docs(second, n, &tokenizer);
            for w in Weighting::ALL {
                let pairs = &pairs;
                let thresholds = &thresholds;
                let docs1 = docs1.clone();
                let docs2 = docs2.clone();
                handles.push(scope.spawn(move || {
                    let (v1, v2) = build_vectors(&docs1, &docs2, w);
                    let mut local: Vec<Evaluated> = Vec::new();
                    for m in Measure::ALL {
                        let scored: Vec<(EntityId, EntityId, f64)> = pairs
                            .iter()
                            .map(|&(a, b)| (a, b, m.compute(&v1[a.index()], &v2[b.index()])))
                            .filter(|&(_, _, s)| s > 0.0)
                            .collect();
                        let trace = umc_trace(&scored);
                        for &t in thresholds {
                            let matching = Matching::from_pairs(
                                trace
                                    .iter()
                                    .filter(|&&(_, _, s)| s > t)
                                    .map(|&(a, b, _)| (a, b)),
                            );
                            let q = MatchQuality::evaluate(&matching, truth);
                            local.push((
                                BslConfig {
                                    ngram: n,
                                    weighting: w,
                                    measure: m,
                                    threshold: t,
                                },
                                q,
                                trace.clone(),
                            ));
                        }
                    }
                    local
                }));
            }
        }
        for h in handles {
            for (cfg, q, trace) in h.join().expect("BSL worker panicked") {
                evaluated += 1;
                let better = match &best {
                    None => true,
                    Some((bc, bq, _)) => {
                        q.f1() > bq.f1() + 1e-12
                            || ((q.f1() - bq.f1()).abs() <= 1e-12
                                && (cfg.ngram, cfg.threshold as i64)
                                    < (bc.ngram, bc.threshold as i64))
                    }
                };
                if better {
                    best = Some((cfg, q, trace));
                }
            }
        }
    });
    let (config, quality, trace) = best.expect("at least one configuration evaluated");
    let matching = Matching::from_pairs(
        trace
            .iter()
            .filter(|&&(_, _, s)| s > config.threshold)
            .map(|&(a, b, _)| (a, b)),
    );
    BslResult {
        config,
        quality,
        matching,
        configs_evaluated: evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::token_blocking;
    use minoan_kb::{KbBuilder, KbPair};
    use minoan_text::TokenizedPair;

    fn easy_pair() -> (KbPair, GroundTruth) {
        let mut a = KbBuilder::new("E1");
        let mut b = KbBuilder::new("E2");
        let mut truth = Matching::new();
        for i in 0..6 {
            a.add_literal(
                &format!("a:{i}"),
                "name",
                &format!("widget gizmo alpha{i} beta{i}"),
            );
            b.add_literal(
                &format!("b:{i}"),
                "label",
                &format!("widget gizmo alpha{i} beta{i}"),
            );
            truth.insert(EntityId(i), EntityId(i));
        }
        (KbPair::new(a.finish(), b.finish()), truth)
    }

    #[test]
    fn bsl_nails_strongly_similar_data() {
        let (pair, truth) = easy_pair();
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&tokens);
        let r = run_bsl(&pair.first, &pair.second, &[&bt], &truth);
        assert!(
            (r.quality.f1() - 1.0).abs() < 1e-9,
            "F1 was {}",
            r.quality.f1()
        );
        assert_eq!(r.matching.len(), 6);
        assert_eq!(r.configs_evaluated, 480);
        assert!(r.matching.is_partial_matching());
    }

    #[test]
    fn bsl_reports_the_config_it_used() {
        let (pair, truth) = easy_pair();
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&tokens);
        let r = run_bsl(&pair.first, &pair.second, &[&bt], &truth);
        assert!((1..=3).contains(&r.config.ngram));
        let shown = r.config.to_string();
        assert!(shown.contains("gram"));
        // Re-running is deterministic.
        let r2 = run_bsl(&pair.first, &pair.second, &[&bt], &truth);
        assert_eq!(r.config, r2.config);
        assert_eq!(r.quality, r2.quality);
    }

    #[test]
    fn bsl_cannot_match_without_shared_values() {
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:0", "name", "totally different");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:0", "label", "nothing alike");
        let pair = KbPair::new(a.finish(), b.finish());
        let truth = Matching::from_pairs([(EntityId(0), EntityId(0))]);
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&tokens);
        let r = run_bsl(&pair.first, &pair.second, &[&bt], &truth);
        assert_eq!(r.quality.recall(), 0.0);
    }

    #[test]
    fn threshold_grid_has_twenty_points() {
        let g = threshold_grid();
        assert_eq!(g.len(), 20);
        assert_eq!(g[0], 0.0);
        assert!((g[19] - 0.95).abs() < 1e-12);
    }
}
