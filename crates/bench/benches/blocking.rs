//! Blocking-stage benchmarks (the machinery behind Table II): token
//! blocking, name blocking and Block Purging per dataset profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minoan_blocking::{name_blocking, purge, token_blocking};
use minoan_core::entity_names;
use minoan_datagen::DatasetKind;
use minoan_text::{TokenizedPair, Tokenizer};

fn bench_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocking");
    group.sample_size(10);
    for kind in DatasetKind::ALL {
        let d = kind.generate_scaled(7, 0.1);
        let tokens = TokenizedPair::build(&d.pair, &Tokenizer::default());
        group.bench_with_input(
            BenchmarkId::new("token_blocking", kind.name()),
            &tokens,
            |b, t| b.iter(|| token_blocking(t)),
        );
        let bt = token_blocking(&tokens);
        group.bench_with_input(BenchmarkId::new("purging", kind.name()), &bt, |b, bt| {
            b.iter(|| purge(bt))
        });
        let names1 = entity_names(&d.pair.first, 2);
        let names2 = entity_names(&d.pair.second, 2);
        group.bench_with_input(
            BenchmarkId::new("name_blocking", kind.name()),
            &(&names1, &names2),
            |b, (n1, n2)| b.iter(|| name_blocking(n1, n2)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
